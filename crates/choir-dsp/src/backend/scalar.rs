//! The scalar reference oracle.
//!
//! These loops are element-for-element the code the rest of the
//! workspace ran before the backend module existed; they define the
//! exact bits every other backend must reproduce (see the module-level
//! ULP policy). Public so tests can compare any backend against the
//! oracle directly, without going through the dispatcher.

use crate::complex::C64;
use std::f64::consts::PI;

/// Oracle for [`super::conj_dot`]: `Σ conj(a[i])·b[i]` folded from
/// `C64::ZERO` in index order over `zip(a, b)`.
pub fn conj_dot(a: &[C64], b: &[C64]) -> C64 {
    a.iter().zip(b).map(|(x, y)| x.conj() * y).sum()
}

/// Oracle for [`super::dot`]: unconjugated `Σ a[i]·b[i]` folded from
/// `C64::ZERO` in index order over `zip(a, b)` — the substitution
/// kernel of the Cholesky solve.
pub fn dot(a: &[C64], b: &[C64]) -> C64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Oracle for [`super::cmul_into`]: `out[i] = a[i]·b[i]`.
pub fn cmul_into(a: &[C64], b: &[C64], out: &mut [C64]) {
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x * y;
    }
}

/// Oracle for [`super::axpy`]: `out[i] ∓= amp·xs[i]`.
pub fn axpy(out: &mut [C64], xs: &[C64], amp: C64, subtract: bool) {
    if subtract {
        for (o, &x) in out.iter_mut().zip(xs) {
            *o -= amp * x;
        }
    } else {
        for (o, &x) in out.iter_mut().zip(xs) {
            *o += amp * x;
        }
    }
}

/// Oracle for [`super::tone_into`]: `buf[t] = cis(2π·freq_bins·t/n)`,
/// with `cis` being the deterministic [`super::sincos`] kernel (not
/// libm) so vector backends can replay the exact op sequence per lane.
pub fn tone_into(buf: &mut [C64], n: usize, freq_bins: f64) {
    let w = 2.0 * PI * freq_bins / n as f64;
    for (t, v) in buf.iter_mut().enumerate() {
        *v = super::sincos::cis(w * t as f64);
    }
}

/// Oracle for [`super::tone_block_into`]: strided AoSoA tone fill.
/// Candidate `j`'s basis occupies `block[t·W + j]` (`W = freqs.len()`);
/// each element is produced by the exact expression [`tone_into`] uses
/// for `(n, freqs[j], t)`, so a blocked column is bit-identical to a
/// dense basis at the same frequency, at every width.
pub fn tone_block_into(block: &mut [C64], n: usize, freqs: &[f64]) {
    let w = freqs.len();
    debug_assert!(
        w > 0 && block.len().is_multiple_of(w),
        "tone_block_into: ragged block"
    );
    let rows = block.len() / w;
    for (j, &f) in freqs.iter().enumerate() {
        let wj = 2.0 * PI * f / n as f64;
        for t in 0..rows {
            block[t * w + j] = super::sincos::cis(wj * t as f64);
        }
    }
}

/// Oracle for [`super::conj_dot_block`]: `out[j] = Σ_t
/// conj(block[t·W + j])·y[t]` with `W = out.len()`, each candidate's
/// accumulator folded from `C64::ZERO` in ascending `t` — the same
/// per-candidate order as [`conj_dot`], so a blocked projection is
/// bit-identical to `W` separate dense dots, at every width.
pub fn conj_dot_block(block: &[C64], y: &[C64], out: &mut [C64]) {
    let w = out.len();
    debug_assert!(w > 0, "conj_dot_block: empty block");
    let rows = (block.len() / w).min(y.len());
    out.fill(C64::ZERO);
    for (t, &yt) in y.iter().enumerate().take(rows) {
        let row = &block[t * w..t * w + w];
        for (o, b) in out.iter_mut().zip(row) {
            *o += b.conj() * yt;
        }
    }
}

/// Oracle for [`super::residual_block`]: `out[j] = ‖y − c_j·b_j‖²` for
/// candidate `j`'s strided column, with real and imaginary squares
/// accumulated in *separate* `t`-ascending sums that are added once at
/// the end. That split is the oracle's definition (chosen so vector
/// lanes can keep one `(Σre², Σim²)` accumulator pair per candidate);
/// per-candidate results are independent of the block width.
pub fn residual_block(block: &[C64], y: &[C64], coeffs: &[C64], out: &mut [f64]) {
    let w = out.len();
    assert!(
        w > 0 && w <= super::MAX_BLOCK_WIDTH && coeffs.len() == w,
        "residual_block: width out of range"
    );
    let rows = (block.len() / w).min(y.len());
    let mut acc = [[0.0f64; 2]; super::MAX_BLOCK_WIDTH];
    let acc = &mut acc[..w];
    for a in acc.iter_mut() {
        *a = [0.0; 2];
    }
    for (t, &yt) in y.iter().enumerate().take(rows) {
        let row = &block[t * w..t * w + w];
        for ((a, &c), &b) in acc.iter_mut().zip(coeffs).zip(row) {
            let d = yt - c * b;
            a[0] += d.re * d.re;
            a[1] += d.im * d.im;
        }
    }
    for (o, a) in out.iter_mut().zip(acc.iter()) {
        *o = a[0] + a[1];
    }
}

/// Oracle for [`super::butterflies`]: every radix-2 pass over an
/// already bit-reversed buffer, in-place.
pub fn butterflies(x: &mut [C64], twiddles: &[C64], forward: bool) {
    let n = x.len();
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let stride = n / len;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let tw = twiddles[k * stride];
                let tw = if forward { tw } else { tw.conj() };
                let a = x[start + k];
                let b = x[start + k + half] * tw;
                x[start + k] = a + b;
                x[start + k + half] = a - b;
            }
        }
        len <<= 1;
    }
}

/// Oracle for [`super::dot_rev`]: `Σ_j xs[L-1-j]·kernel[j]` with `j`
/// ascending, accumulated from `C64::ZERO`.
pub fn dot_rev(xs: &[C64], kernel: &[f64]) -> C64 {
    debug_assert_eq!(xs.len(), kernel.len());
    let l = xs.len();
    let mut acc = C64::ZERO;
    for (j, &k) in kernel.iter().enumerate() {
        acc += xs[l - 1 - j].scale(k);
    }
    acc
}

/// Oracle for [`super::conj_into`]: `out[i] = conj(src[i])`.
pub fn conj_into(src: &[C64], out: &mut [C64]) {
    for (o, &s) in out.iter_mut().zip(src) {
        *o = s.conj();
    }
}
