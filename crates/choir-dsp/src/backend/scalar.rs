//! The scalar reference oracle.
//!
//! These loops are element-for-element the code the rest of the
//! workspace ran before the backend module existed; they define the
//! exact bits every other backend must reproduce (see the module-level
//! ULP policy). Public so tests can compare any backend against the
//! oracle directly, without going through the dispatcher.

use crate::complex::C64;
use std::f64::consts::PI;

/// Oracle for [`super::conj_dot`]: `Σ conj(a[i])·b[i]` folded from
/// `C64::ZERO` in index order over `zip(a, b)`.
pub fn conj_dot(a: &[C64], b: &[C64]) -> C64 {
    a.iter().zip(b).map(|(x, y)| x.conj() * y).sum()
}

/// Oracle for [`super::cmul_into`]: `out[i] = a[i]·b[i]`.
pub fn cmul_into(a: &[C64], b: &[C64], out: &mut [C64]) {
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x * y;
    }
}

/// Oracle for [`super::axpy`]: `out[i] ∓= amp·xs[i]`.
pub fn axpy(out: &mut [C64], xs: &[C64], amp: C64, subtract: bool) {
    if subtract {
        for (o, &x) in out.iter_mut().zip(xs) {
            *o -= amp * x;
        }
    } else {
        for (o, &x) in out.iter_mut().zip(xs) {
            *o += amp * x;
        }
    }
}

/// Oracle for [`super::tone_into`]: `buf[t] = cis(2π·freq_bins·t/n)`.
pub fn tone_into(buf: &mut [C64], n: usize, freq_bins: f64) {
    let w = 2.0 * PI * freq_bins / n as f64;
    for (t, v) in buf.iter_mut().enumerate() {
        *v = C64::cis(w * t as f64);
    }
}

/// Oracle for [`super::butterflies`]: every radix-2 pass over an
/// already bit-reversed buffer, in-place.
pub fn butterflies(x: &mut [C64], twiddles: &[C64], forward: bool) {
    let n = x.len();
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let stride = n / len;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let tw = twiddles[k * stride];
                let tw = if forward { tw } else { tw.conj() };
                let a = x[start + k];
                let b = x[start + k + half] * tw;
                x[start + k] = a + b;
                x[start + k + half] = a - b;
            }
        }
        len <<= 1;
    }
}

/// Oracle for [`super::dot_rev`]: `Σ_j xs[L-1-j]·kernel[j]` with `j`
/// ascending, accumulated from `C64::ZERO`.
pub fn dot_rev(xs: &[C64], kernel: &[f64]) -> C64 {
    debug_assert_eq!(xs.len(), kernel.len());
    let l = xs.len();
    let mut acc = C64::ZERO;
    for (j, &k) in kernel.iter().enumerate() {
        acc += xs[l - 1 - j].scale(k);
    }
    acc
}

/// Oracle for [`super::conj_into`]: `out[i] = conj(src[i])`.
pub fn conj_into(src: &[C64], out: &mut [C64]) {
    for (o, &s) in out.iter_mut().zip(src) {
        *o = s.conj();
    }
}
