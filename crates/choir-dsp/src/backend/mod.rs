//! Runtime-dispatched SIMD kernels with a scalar reference oracle.
//!
//! Stage profiles (BENCH_kernel.json) show the Algorithm-1 refine loop
//! spending its time in a handful of dense complex kernels: dechirp
//! multiplies, conjugated dot products for the Gram system, tone-basis
//! synthesis, the sinc interpolation MAC, and the radix-2 FFT
//! butterflies. This module gives each of those a narrow kernel entry
//! point and selects an implementation once per process:
//!
//! * **scalar** — the reference oracle. Element-for-element the same
//!   loops the rest of the workspace used before this module existed;
//!   every other backend is defined as "bit-identical to this".
//! * **portable** — safe Rust structured so LLVM can auto-vectorize the
//!   element-wise kernels. No `unsafe`, no `std::arch`.
//! * **avx2** — x86_64 `std::arch` intrinsics (f64 lanes only, no FMA).
//! * **neon** — aarch64 `std::arch` intrinsics (f64 lanes only, no FMA).
//!
//! # ULP policy
//!
//! The policy machinery distinguishes decoded bits (symbols, CRCs,
//! payloads) from intermediate floats, and could in principle grant
//! vector paths a per-kernel ULP budget on the intermediates. The
//! budget for every kernel in this module is currently **0 ULP**: the
//! repo's determinism contract compares estimator outputs via
//! `f64::to_bits` (`tests/golden_seeded.txt`, the bench digests, the
//! `kernel_props.rs` suites), so any intermediate drift becomes a
//! golden-capture diff. Vector implementations therefore:
//!
//! * never use FMA (it contracts `a*b+c` into one rounding, changing
//!   bits relative to the two-rounding scalar expression);
//! * keep reduction order identical to the scalar fold — lanes may
//!   compute products in parallel, but sums accumulate sequentially in
//!   the oracle's order;
//! * flip signs by XOR with the IEEE sign bit (exact, matching `Neg`);
//! * synthesize tones through the repo's own deterministic [`sincos`]
//!   kernel, never libm. Libm transcendentals cannot be reproduced
//!   lane-exactly by vector polynomials, which is why `tone_into` was
//!   originally pinned to the oracle; owning the polynomial (one fixed
//!   IEEE op sequence, replayed identically per lane) makes tone
//!   synthesis dispatchable like every other kernel.
//!
//! Within those rules the SIMD win comes from vectorizing the
//! multiplies and the element-wise passes, which is where the cycles
//! are. `crates/choir-dsp/tests/backend_props.rs` enforces the 0-ULP
//! budget per kernel on adversarial inputs; the bench-smoke CI gate
//! enforces it end-to-end across backends on decoded slots.
//!
//! **NaN results are outside the budget.** IEEE-754 leaves the sign and
//! payload of a NaN produced by an invalid operation (or propagated
//! through one) unspecified, and LLVM exploits that freedom — e.g.
//! rewriting `x - y` as `x + (-y)`, identical for every non-NaN value
//! but sign-flipping a propagated NaN. No backend (including pure
//! scalar Rust, whose const-evaluated NaNs already differ from run-time
//! ones) can pin NaN bits, so the contract is: bit-identical whenever
//! the oracle's result is non-NaN; "is a NaN" match otherwise. The
//! decode pipeline asserts finiteness at its seams, so NaNs never reach
//! golden captures.
//!
//! # Dispatch
//!
//! The active backend is chosen on first use from `CHOIR_DSP_BACKEND`
//! (`scalar|portable|avx2|neon|auto`, default `auto`) intersected with
//! what the host supports, and cached in an atomic. `auto` picks the
//! widest available vector backend; requesting an unavailable backend
//! falls back to `scalar` (the one implementation every host has);
//! unknown values behave like `auto`. [`force`] and [`reset`] exist so
//! tests and benches can pin or re-derive the choice.
//!
//! # Why `unsafe` lives here and only here
//!
//! The workspace denies `unsafe_code`; this directory is the single
//! sanctioned exception (`avx2.rs`/`neon.rs` re-allow it with an inner
//! attribute) and the `cargo xtask lint` rule `simd_boundary` bans the
//! `unsafe` and `std::arch` tokens everywhere else. Keeping the
//! trusted surface to two leaf files makes the soundness argument
//! reviewable: intrinsics are only reached after the matching CPU
//! feature was detected at dispatch time.

use crate::complex::C64;
use choir_sync::atomic::{AtomicU8, Ordering};

pub mod scalar;
pub mod sincos;
mod vector;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;

/// Which kernel implementation the dispatcher routes to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// The scalar reference oracle — defines correct bits.
    Scalar,
    /// Safe auto-vectorizable loops; the fallback "vector" tier.
    Portable,
    /// x86_64 AVX2 intrinsics (requires runtime `avx2` detection).
    Avx2,
    /// aarch64 NEON intrinsics (baseline on aarch64).
    Neon,
}

impl BackendKind {
    /// Stable lowercase name, matching the `CHOIR_DSP_BACKEND` values.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Portable => "portable",
            BackendKind::Avx2 => "avx2",
            BackendKind::Neon => "neon",
        }
    }
}

/// Sentinel meaning "not chosen yet"; any other value is a
/// `BackendKind` discriminant.
const UNINIT: u8 = u8::MAX;

/// Cached choice. Written idempotently: every thread that races the
/// first lookup derives the same value from the same environment.
static ACTIVE: AtomicU8 = AtomicU8::new(UNINIT);

fn encode(kind: BackendKind) -> u8 {
    match kind {
        BackendKind::Scalar => 0,
        BackendKind::Portable => 1,
        BackendKind::Avx2 => 2,
        BackendKind::Neon => 3,
    }
}

fn decode(v: u8) -> BackendKind {
    match v {
        0 => BackendKind::Scalar,
        1 => BackendKind::Portable,
        2 => BackendKind::Avx2,
        _ => BackendKind::Neon,
    }
}

/// True when the AVX2 code path can be soundly called on this host.
fn avx2_usable() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True when the NEON code path can be soundly called on this host.
/// NEON (AdvSIMD) is baseline for aarch64, so compilation target is
/// the whole test.
fn neon_usable() -> bool {
    cfg!(target_arch = "aarch64")
}

/// Backends that can run on this host, scalar first.
pub fn available() -> Vec<BackendKind> {
    let mut kinds = vec![BackendKind::Scalar, BackendKind::Portable];
    if avx2_usable() {
        kinds.push(BackendKind::Avx2);
    }
    if neon_usable() {
        kinds.push(BackendKind::Neon);
    }
    kinds
}

/// The backend `auto` resolves to on this host: the widest available
/// vector implementation, or portable when the host has none.
fn auto_kind() -> BackendKind {
    if avx2_usable() {
        BackendKind::Avx2
    } else if neon_usable() {
        BackendKind::Neon
    } else {
        BackendKind::Portable
    }
}

/// Derives the backend from `CHOIR_DSP_BACKEND` and host capability.
fn select_from_env() -> BackendKind {
    let want = std::env::var("CHOIR_DSP_BACKEND").unwrap_or_default();
    match want.trim().to_ascii_lowercase().as_str() {
        "scalar" => BackendKind::Scalar,
        "portable" => BackendKind::Portable,
        "avx2" if avx2_usable() => BackendKind::Avx2,
        "neon" if neon_usable() => BackendKind::Neon,
        // An explicitly requested backend the host cannot run falls
        // back to the oracle rather than guessing at a vector tier.
        "avx2" | "neon" => BackendKind::Scalar,
        // Empty, "auto", and anything unrecognised: pick for the host.
        _ => auto_kind(),
    }
}

/// The backend all kernel entry points currently dispatch to.
///
/// First call resolves `CHOIR_DSP_BACKEND` against host capability and
/// caches the answer; later calls are a single atomic load. The init
/// race is benign: every thread computes the same value.
pub fn active() -> BackendKind {
    let v = ACTIVE.load(Ordering::Relaxed); // ordering: single cell, no data published through it
    if v != UNINIT {
        return decode(v);
    }
    let kind = select_from_env();
    ACTIVE.store(encode(kind), Ordering::Relaxed); // ordering: idempotent init; racers store the same value
    kind
}

/// Pins the dispatcher to `kind` process-wide.
///
/// Test/bench hook — callers are responsible for only forcing backends
/// reported by [`available`], and for serialising against concurrent
/// kernel users; all backends produce identical bits, so a mid-flight
/// switch is still correct, just not a meaningful measurement.
pub fn force(kind: BackendKind) {
    ACTIVE.store(encode(kind), Ordering::Relaxed); // ordering: single cell, no data published through it
}

/// Clears a [`force`], so the next [`active`] call re-derives the
/// backend from the environment.
pub fn reset() {
    ACTIVE.store(UNINIT, Ordering::Relaxed); // ordering: single cell, no data published through it
}

/// Conjugated dot product `Σ conj(a[i])·b[i]` over `zip(a, b)`,
/// accumulated in index order from `C64::ZERO`.
pub fn conj_dot(a: &[C64], b: &[C64]) -> C64 {
    match active() {
        BackendKind::Scalar => scalar::conj_dot(a, b),
        BackendKind::Portable => vector::conj_dot(a, b),
        #[cfg(target_arch = "x86_64")]
        BackendKind::Avx2 => avx2::conj_dot(a, b),
        #[cfg(target_arch = "aarch64")]
        BackendKind::Neon => neon::conj_dot(a, b),
        #[allow(unreachable_patterns)]
        _ => scalar::conj_dot(a, b),
    }
}

/// Element-wise complex multiply `out[i] = a[i]·b[i]` over
/// `zip(out, a, b)` (the dechirp / Hadamard kernel).
pub fn cmul_into(a: &[C64], b: &[C64], out: &mut [C64]) {
    match active() {
        BackendKind::Scalar => scalar::cmul_into(a, b, out),
        BackendKind::Portable => vector::cmul_into(a, b, out),
        #[cfg(target_arch = "x86_64")]
        BackendKind::Avx2 => avx2::cmul_into(a, b, out),
        #[cfg(target_arch = "aarch64")]
        BackendKind::Neon => neon::cmul_into(a, b, out),
        #[allow(unreachable_patterns)]
        _ => scalar::cmul_into(a, b, out),
    }
}

/// Gram residual update `out[i] -= amp·xs[i]` (`subtract == true`) or
/// `out[i] += amp·xs[i]`, over `zip(out, xs)`. Callers with a
/// piecewise-constant amplitude (step components) split the slice at
/// the step boundary and issue one call per segment.
pub fn axpy(out: &mut [C64], xs: &[C64], amp: C64, subtract: bool) {
    match active() {
        BackendKind::Scalar => scalar::axpy(out, xs, amp, subtract),
        BackendKind::Portable => vector::axpy(out, xs, amp, subtract),
        #[cfg(target_arch = "x86_64")]
        BackendKind::Avx2 => avx2::axpy(out, xs, amp, subtract),
        #[cfg(target_arch = "aarch64")]
        BackendKind::Neon => neon::axpy(out, xs, amp, subtract),
        #[allow(unreachable_patterns)]
        _ => scalar::axpy(out, xs, amp, subtract),
    }
}

/// Maximum candidate-block width the blocked kernels accept. Wide
/// enough for the W ∈ {1, 2, 4, 8} sweep; small enough that per-width
/// scratch lives on the stack.
pub const MAX_BLOCK_WIDTH: usize = 8;

/// Unconjugated dot product `Σ a[i]·b[i]` over `zip(a, b)`, accumulated
/// in index order from `C64::ZERO` — the reduction inside the Cholesky
/// forward/back substitution.
pub fn dot(a: &[C64], b: &[C64]) -> C64 {
    match active() {
        BackendKind::Scalar => scalar::dot(a, b),
        BackendKind::Portable => vector::dot(a, b),
        #[cfg(target_arch = "x86_64")]
        BackendKind::Avx2 => avx2::dot(a, b),
        #[cfg(target_arch = "aarch64")]
        BackendKind::Neon => neon::dot(a, b),
        #[allow(unreachable_patterns)]
        _ => scalar::dot(a, b),
    }
}

/// Tone-basis synthesis `buf[t] = cis(2π·freq_bins·t / n)`.
///
/// `cis` here is the deterministic [`sincos`] kernel, *not* libm: libm
/// transcendentals cannot be re-derived lane-exactly by a vector
/// routine (which is why this kernel used to be pinned to the scalar
/// oracle), and phasor recurrences drift. Owning the polynomial gives
/// every backend the same fixed IEEE op sequence per element, so tone
/// synthesis now dispatches — and it is the dominant per-probe cost of
/// the Algorithm-1 refine loop, so this is where batching pays.
pub fn tone_into(buf: &mut [C64], n: usize, freq_bins: f64) {
    match active() {
        BackendKind::Scalar => scalar::tone_into(buf, n, freq_bins),
        BackendKind::Portable => vector::tone_into(buf, n, freq_bins),
        #[cfg(target_arch = "x86_64")]
        BackendKind::Avx2 => avx2::tone_into(buf, n, freq_bins),
        #[cfg(target_arch = "aarch64")]
        BackendKind::Neon => neon::tone_into(buf, n, freq_bins),
        #[allow(unreachable_patterns)]
        _ => scalar::tone_into(buf, n, freq_bins),
    }
}

/// AoSoA tone fill for a candidate block: `block[t·W + j] =
/// cis(2π·freqs[j]·t / n)` with `W = freqs.len()` and
/// `block.len() % W == 0`. Element values are bit-identical to
/// [`tone_into`]'s at the same `(n, freq, t)`, at every width — the
/// blocked layout changes memory order, never arithmetic.
pub fn tone_block_into(block: &mut [C64], n: usize, freqs: &[f64]) {
    assert!(
        !freqs.is_empty() && freqs.len() <= MAX_BLOCK_WIDTH,
        "tone_block_into: width out of range"
    );
    match active() {
        BackendKind::Scalar => scalar::tone_block_into(block, n, freqs),
        BackendKind::Portable => vector::tone_block_into(block, n, freqs),
        #[cfg(target_arch = "x86_64")]
        BackendKind::Avx2 => avx2::tone_block_into(block, n, freqs),
        #[cfg(target_arch = "aarch64")]
        BackendKind::Neon => neon::tone_block_into(block, n, freqs),
        #[allow(unreachable_patterns)]
        _ => scalar::tone_block_into(block, n, freqs),
    }
}

/// Blocked conjugated projection: `out[j] = Σ_t conj(block[t·W + j])·
/// y[t]` with `W = out.len()`, each candidate folded from `C64::ZERO`
/// in ascending `t` — the same per-candidate order as [`conj_dot`], so
/// results match `W` separate dense dots bit-for-bit at every width.
pub fn conj_dot_block(block: &[C64], y: &[C64], out: &mut [C64]) {
    assert!(
        !out.is_empty() && out.len() <= MAX_BLOCK_WIDTH,
        "conj_dot_block: width out of range"
    );
    match active() {
        BackendKind::Scalar => scalar::conj_dot_block(block, y, out),
        BackendKind::Portable => vector::conj_dot_block(block, y, out),
        #[cfg(target_arch = "x86_64")]
        BackendKind::Avx2 => avx2::conj_dot_block(block, y, out),
        #[cfg(target_arch = "aarch64")]
        BackendKind::Neon => neon::conj_dot_block(block, y, out),
        #[allow(unreachable_patterns)]
        _ => scalar::conj_dot_block(block, y, out),
    }
}

/// Blocked residual energies: `out[j] = ‖y − coeffs[j]·b_j‖²` against
/// candidate `j`'s strided column, accumulated as separate `t`-ascending
/// real/imaginary square sums added once at the end (the oracle's
/// definition — see `scalar::residual_block`). Per-candidate results
/// are independent of the block width.
pub fn residual_block(block: &[C64], y: &[C64], coeffs: &[C64], out: &mut [f64]) {
    match active() {
        BackendKind::Scalar => scalar::residual_block(block, y, coeffs, out),
        BackendKind::Portable => vector::residual_block(block, y, coeffs, out),
        #[cfg(target_arch = "x86_64")]
        BackendKind::Avx2 => avx2::residual_block(block, y, coeffs, out),
        #[cfg(target_arch = "aarch64")]
        BackendKind::Neon => neon::residual_block(block, y, coeffs, out),
        #[allow(unreachable_patterns)]
        _ => scalar::residual_block(block, y, coeffs, out),
    }
}

/// All radix-2 butterfly passes over an already bit-reversed buffer.
/// `twiddles[k]` must hold `cis(-2πk/n)` for `k < n/2`; the inverse
/// transform (`forward == false`) conjugates each twiddle as it is
/// consumed, exactly as the oracle does.
pub fn butterflies(x: &mut [C64], twiddles: &[C64], forward: bool) {
    match active() {
        BackendKind::Scalar => scalar::butterflies(x, twiddles, forward),
        BackendKind::Portable => vector::butterflies(x, twiddles, forward),
        #[cfg(target_arch = "x86_64")]
        BackendKind::Avx2 => avx2::butterflies(x, twiddles, forward),
        #[cfg(target_arch = "aarch64")]
        BackendKind::Neon => neon::butterflies(x, twiddles, forward),
        #[allow(unreachable_patterns)]
        _ => scalar::butterflies(x, twiddles, forward),
    }
}

/// Reversed real-kernel MAC `Σ_j xs[L-1-j]·kernel[j]` (`L = xs.len()`,
/// `j` ascending, accumulated from `C64::ZERO`) — the interior of the
/// sinc fractional-delay filter, where the source index walks backwards
/// as the kernel index walks forwards.
pub fn dot_rev(xs: &[C64], kernel: &[f64]) -> C64 {
    match active() {
        BackendKind::Scalar => scalar::dot_rev(xs, kernel),
        BackendKind::Portable => vector::dot_rev(xs, kernel),
        #[cfg(target_arch = "x86_64")]
        BackendKind::Avx2 => avx2::dot_rev(xs, kernel),
        #[cfg(target_arch = "aarch64")]
        BackendKind::Neon => neon::dot_rev(xs, kernel),
        #[allow(unreachable_patterns)]
        _ => scalar::dot_rev(xs, kernel),
    }
}

/// Element-wise conjugate `out[i] = conj(src[i])` over
/// `zip(out, src)` (downchirp construction).
pub fn conj_into(src: &[C64], out: &mut [C64]) {
    match active() {
        BackendKind::Scalar => scalar::conj_into(src, out),
        BackendKind::Portable => vector::conj_into(src, out),
        #[cfg(target_arch = "x86_64")]
        BackendKind::Avx2 => avx2::conj_into(src, out),
        #[cfg(target_arch = "aarch64")]
        BackendKind::Neon => neon::conj_into(src, out),
        #[allow(unreachable_patterns)]
        _ => scalar::conj_into(src, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_env_values() {
        for kind in available() {
            assert_eq!(decode(encode(kind)), kind);
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn scalar_is_always_available() {
        assert!(available().contains(&BackendKind::Scalar));
        assert!(available().contains(&BackendKind::Portable));
    }

    #[test]
    fn force_and_reset_steer_dispatch() {
        // Serialised implicitly: this is the only test in the crate
        // that mutates the dispatcher.
        let before = active();
        force(BackendKind::Scalar);
        assert_eq!(active(), BackendKind::Scalar);
        force(BackendKind::Portable);
        assert_eq!(active(), BackendKind::Portable);
        reset();
        let rederived = active();
        assert!(available().contains(&rederived));
        force(before);
    }
}
