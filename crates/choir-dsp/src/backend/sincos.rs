//! Deterministic polynomial `sin`/`cos` — the kernel that lets tone
//! synthesis dispatch to vector backends.
//!
//! Libm's `sin`/`cos` are scalar-only black boxes: their exact bits vary
//! between implementations and cannot be re-derived lane-for-lane by a
//! vector routine, which is why `tone_into` was pinned to the scalar
//! oracle when the backend module landed. This module removes that
//! ceiling by *owning* the transcendental: one fixed sequence of IEEE
//! f64 operations (no FMA, no reassociation) that every backend —
//! scalar Rust or SIMD lanes — executes identically. Bit-identity
//! across backends then holds by construction: each lane of the AVX2
//! implementation performs the same multiply/add chain on the same
//! value as the scalar loop, and IEEE 754 arithmetic is deterministic
//! per operation.
//!
//! The algorithm is the classical fdlibm shape:
//!
//! 1. **Quadrant split.** `k = round_ties_even(x·2/π)` computed with
//!    the shift trick `(x·2/π + 1.5·2⁵²) − 1.5·2⁵²`, whose double
//!    rounding is the *same* double rounding in every backend; the
//!    quadrant is the low two bits of the shifted value's mantissa.
//! 2. **Cody–Waite reduction.** `r = x − k·π/2` with π/2 split into
//!    three parts so each product is exact enough to keep |r| ≤ π/4 + ε
//!    accurate to the last bit for the phase magnitudes tone synthesis
//!    produces (|x| ≲ 2¹⁸).
//! 3. **Minimax polynomials.** Degree-13/12 odd/even polynomials for
//!    `sin`/`cos` on [−π/4, π/4] (fdlibm's coefficients), evaluated by
//!    Horner's rule — a fixed op sequence, ~2 ULP worst case.
//! 4. **Quadrant recombination** by swap/negate, signs flipped via XOR
//!    with the IEEE sign bit (exact).
//!
//! Accuracy is ~1e-16 relative (measured ≤ 1.2e-13 absolute against
//! libm over the tone-synthesis input range), far below the estimator's
//! 1e-4-bin search tolerance. The values *differ* from libm's in the
//! last bits — switching tone synthesis to this kernel was a one-time
//! golden-capture regeneration — but they are the same on every host
//! and backend, which libm never guaranteed.
//!
//! Non-finite phases degrade deterministically: an infinite or NaN `x`
//! propagates NaN through the reduction identically in every backend
//! (subject to the module-level NaN-bits carve-out), and `|x·2/π|`
//! beyond 2⁵¹ leaves the shift trick producing a garbage-but-identical
//! quadrant everywhere. No input can diverge between backends.

use crate::complex::{c64, C64};

/// 2/π, round-to-nearest.
pub(super) const FRAC_2_PI: f64 = std::f64::consts::FRAC_2_PI;
/// π/2 split: leading 53 bits.
pub(super) const PIO2_HI: f64 = std::f64::consts::FRAC_PI_2;
/// π/2 split: next 53 bits.
pub(super) const PIO2_MID: f64 = 6.123_233_995_736_766e-17;
/// π/2 split: remainder.
pub(super) const PIO2_LO: f64 = -1.497_384_904_859_228e-33;
/// 1.5·2⁵² — adding then subtracting this rounds to the nearest
/// integer (ties to even) and leaves that integer's low mantissa bits
/// readable through `to_bits`.
pub(super) const SHIFT: f64 = 6_755_399_441_055_744.0;

/// `sin(r)/r − 1` minimax coefficients on [−π/4, π/4] (fdlibm S1–S6).
// The coefficients are fdlibm's published decimal forms, kept verbatim
// so they can be checked against the source; the extra digits round to
// the intended doubles.
#[allow(clippy::excessive_precision)]
pub(super) const S: [f64; 6] = [
    -1.666_666_666_666_663_24e-1,
    8.333_333_333_322_489_46e-3,
    -1.984_126_982_985_794_93e-4,
    2.755_731_370_707_006_77e-6,
    -2.505_076_025_340_686_34e-8,
    1.589_690_995_211_550_10e-10,
];

/// `cos(r)` minimax coefficients on [−π/4, π/4] (fdlibm C1–C6).
#[allow(clippy::excessive_precision)]
pub(super) const C: [f64; 6] = [
    4.166_666_666_666_660_19e-2,
    -1.388_888_888_887_410_96e-3,
    2.480_158_728_947_672_94e-5,
    -2.755_731_435_139_066_33e-7,
    2.087_572_321_298_174_83e-9,
    -1.135_964_755_778_819_48e-11,
];

/// `e^{jx}` — deterministic `(cos x, sin x)`; the scalar reference for
/// every backend's tone synthesis. The exact op sequence here *is* the
/// contract: vector implementations replay it per lane.
#[inline]
pub fn cis(x: f64) -> C64 {
    let kk = x * FRAC_2_PI + SHIFT;
    // lint:allow(lossy_cast) — masked to the low 2 bits, always 0..=3.
    let quad = (kk.to_bits() & 3) as u32;
    let k = kk - SHIFT;
    let r = ((x - k * PIO2_HI) - k * PIO2_MID) - k * PIO2_LO;
    let z = r * r;
    let ps = S[0] + z * (S[1] + z * (S[2] + z * (S[3] + z * (S[4] + z * S[5]))));
    let sin_r = r + r * z * ps;
    let pc = C[0] + z * (C[1] + z * (C[2] + z * (C[3] + z * (C[4] + z * C[5]))));
    let cos_r = (1.0 - 0.5 * z) + z * z * pc;
    match quad {
        0 => c64(cos_r, sin_r),
        1 => c64(-sin_r, cos_r),
        2 => c64(-cos_r, -sin_r),
        _ => c64(sin_r, -cos_r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_libm_closely_over_tone_range() {
        // Tone synthesis feeds phases w·t with |w| ≤ 2π·n and t < n.
        let mut max_err = 0.0f64;
        for i in 0..20_000 {
            let x = -40_000.0 + i as f64 * 4.000_137;
            let got = cis(x);
            let want = C64::cis(x);
            max_err = max_err.max((got - want).abs());
        }
        assert!(max_err < 1e-11, "max err {max_err:.3e}");
    }

    #[test]
    fn unit_magnitude_to_rounding() {
        for i in 0..5_000 {
            let x = i as f64 * 0.001_3 - 3.0;
            let v = cis(x);
            assert!((v.abs() - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn quadrant_symmetry() {
        // cis(x + π) = −cis(x) to polynomial accuracy.
        for i in 0..1_000 {
            let x = i as f64 * 0.017 - 8.0;
            let a = cis(x);
            let b = cis(x + std::f64::consts::PI);
            assert!((a + b).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn non_finite_phase_yields_nan_not_divergence() {
        for x in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let v = cis(x);
            assert!(v.re.is_nan() && v.im.is_nan());
        }
    }
}
