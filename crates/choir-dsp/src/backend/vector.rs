//! Portable vector backend: safe Rust, no `std::arch`.
//!
//! The element-wise kernels are written over fixed-width chunks so
//! LLVM's auto-vectorizer can lower them to whatever SIMD the target
//! baseline offers; every lane computes exactly the oracle's
//! expression, and rustc never contracts `a*b + c` into an FMA on its
//! own, so the results are bit-identical to [`super::scalar`]. The
//! reductions keep the oracle's sequential fold order — products may
//! vectorize, sums may not reassociate.

use crate::complex::C64;

/// Lane count the element-wise loops are unrolled to. Chosen to fill
/// a 256-bit register file (4 × complex = 8 × f64) without bloating
/// the scalar remainder.
const CHUNK: usize = 4;

/// Portable [`super::conj_dot`]; bit-identical to the oracle.
pub fn conj_dot(a: &[C64], b: &[C64]) -> C64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = C64::ZERO;
    let mut prod = [C64::ZERO; CHUNK];
    let chunks = n / CHUNK * CHUNK;
    for (ca, cb) in a[..chunks]
        .chunks_exact(CHUNK)
        .zip(b[..chunks].chunks_exact(CHUNK))
    {
        // The products are independent and free to vectorize; the fold
        // below must stay in index order.
        for i in 0..CHUNK {
            prod[i] = ca[i].conj() * cb[i];
        }
        for p in prod {
            acc += p;
        }
    }
    for (x, y) in a[chunks..].iter().zip(&b[chunks..]) {
        acc += x.conj() * y;
    }
    acc
}

/// Portable [`super::dot`]; bit-identical to the oracle.
pub fn dot(a: &[C64], b: &[C64]) -> C64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = C64::ZERO;
    let mut prod = [C64::ZERO; CHUNK];
    let chunks = n / CHUNK * CHUNK;
    for (ca, cb) in a[..chunks]
        .chunks_exact(CHUNK)
        .zip(b[..chunks].chunks_exact(CHUNK))
    {
        for i in 0..CHUNK {
            prod[i] = ca[i] * cb[i];
        }
        for p in prod {
            acc += p;
        }
    }
    for (x, y) in a[chunks..].iter().zip(&b[chunks..]) {
        acc += x * y;
    }
    acc
}

/// Portable [`super::tone_into`]; the deterministic sincos chain is a
/// fixed scalar op sequence, so the oracle loop *is* the portable
/// implementation (LLVM may vectorize the polynomial across `t` — each
/// element's chain is independent, so widening cannot reassociate).
pub fn tone_into(buf: &mut [C64], n: usize, freq_bins: f64) {
    super::scalar::tone_into(buf, n, freq_bins);
}

/// Portable [`super::tone_block_into`]; see [`tone_into`].
pub fn tone_block_into(block: &mut [C64], n: usize, freqs: &[f64]) {
    super::scalar::tone_block_into(block, n, freqs);
}

/// Portable [`super::conj_dot_block`]; bit-identical to the oracle —
/// the inner per-row loop over candidates is lane-independent (each
/// candidate owns its accumulator), which is exactly the shape the
/// auto-vectorizer can widen without reassociating any sum.
pub fn conj_dot_block(block: &[C64], y: &[C64], out: &mut [C64]) {
    super::scalar::conj_dot_block(block, y, out);
}

/// Portable [`super::residual_block`]; bit-identical to the oracle
/// (see `conj_dot_block` — same lane-per-candidate argument).
pub fn residual_block(block: &[C64], y: &[C64], coeffs: &[C64], out: &mut [f64]) {
    super::scalar::residual_block(block, y, coeffs, out);
}

/// Portable [`super::cmul_into`]; bit-identical to the oracle.
pub fn cmul_into(a: &[C64], b: &[C64], out: &mut [C64]) {
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x * y;
    }
}

/// Portable [`super::axpy`]; bit-identical to the oracle.
pub fn axpy(out: &mut [C64], xs: &[C64], amp: C64, subtract: bool) {
    if subtract {
        for (o, &x) in out.iter_mut().zip(xs) {
            *o -= amp * x;
        }
    } else {
        for (o, &x) in out.iter_mut().zip(xs) {
            *o += amp * x;
        }
    }
}

/// Portable [`super::butterflies`]; shares the oracle loop. The
/// butterfly body is already a lane-independent map over index pairs,
/// which is as auto-vectorizable as safe indexed code gets — the
/// explicitly vectorized variant lives in the `avx2`/`neon` backends.
pub fn butterflies(x: &mut [C64], twiddles: &[C64], forward: bool) {
    super::scalar::butterflies(x, twiddles, forward);
}

/// Portable [`super::dot_rev`]; bit-identical to the oracle.
pub fn dot_rev(xs: &[C64], kernel: &[f64]) -> C64 {
    debug_assert_eq!(xs.len(), kernel.len());
    let l = xs.len();
    let mut acc = C64::ZERO;
    let mut prod = [C64::ZERO; CHUNK];
    let chunks = l / CHUNK * CHUNK;
    let mut j = 0;
    while j < chunks {
        for i in 0..CHUNK {
            prod[i] = xs[l - 1 - (j + i)].scale(kernel[j + i]);
        }
        for p in prod {
            acc += p;
        }
        j += CHUNK;
    }
    while j < l {
        acc += xs[l - 1 - j].scale(kernel[j]);
        j += 1;
    }
    acc
}

/// Portable [`super::conj_into`]; bit-identical to the oracle.
pub fn conj_into(src: &[C64], out: &mut [C64]) {
    for (o, &s) in out.iter_mut().zip(src) {
        *o = s.conj();
    }
}
