//! # choir-dsp — DSP substrate for the Choir LP-WAN stack
//!
//! Self-contained digital signal processing primitives used throughout the
//! Choir reproduction (SIGCOMM 2017): complex arithmetic, FFTs (radix-2 and
//! Bluestein for arbitrary sizes), spectral peak detection with Dirichlet
//! leakage modelling, small dense complex linear algebra, derivative-free
//! local optimisation, windowing, fractional resampling and statistics.
//!
//! Nothing in this crate knows about LoRa: it is the layer the PHY and the
//! Choir decoder are built on, and it deliberately has no dependencies
//! beyond the standard library.
//!
//! ```
//! use choir_dsp::complex::C64;
//! use choir_dsp::fft::FftPlan;
//!
//! // A 50.4-bin tone (a transmitter with fractional frequency offset)…
//! let n = 128;
//! let x: Vec<C64> = (0..n)
//!     .map(|t| C64::cis(2.0 * std::f64::consts::PI * 50.4 * t as f64 / n as f64))
//!     .collect();
//! // …resolved at 10× zero-padding as the paper does.
//! let spec = FftPlan::new(10 * n).forward_padded(&x);
//! let peaks = choir_dsp::peaks::find_peaks(&spec, &choir_dsp::peaks::PeakConfig::default());
//! assert!((peaks[0].pos - 50.4).abs() < 0.05);
//! ```

#![deny(missing_docs)]

pub mod backend;
pub mod checks;
pub mod complex;
pub mod fft;
pub mod linalg;
pub mod optim;
pub mod peaks;
pub mod resample;
pub mod stats;
pub mod window;
pub mod workspace;

pub use complex::{c64, C64};
pub use fft::{FftPlan, PlanCache};
pub use peaks::{Peak, PeakConfig};
pub use workspace::Workspace;
