//! Fast Fourier transforms.
//!
//! Choir's decoder takes one FFT per received symbol (size `2^SF`) plus a
//! zero-padded FFT (`pad · 2^SF`, the paper uses `pad = 10`) per offset
//! estimate. The approved dependency set has no FFT crate, so this module
//! implements:
//!
//! * an iterative radix-2 decimation-in-time FFT for power-of-two sizes, and
//! * Bluestein's chirp-z algorithm for arbitrary sizes (e.g. `10·128`),
//!   built on top of the radix-2 kernel.
//!
//! [`FftPlan`] precomputes twiddle factors (and, for Bluestein, the chirp
//! sequence and its transform) once; planning is cheap enough to do per
//! experiment but should be hoisted out of per-symbol loops. Call sites
//! that cannot hoist (one-shot helpers, variable sizes) go through the
//! process-wide [`PlanCache`] so twiddle/Bluestein setup is paid once per
//! size per process.

use crate::complex::C64;
use crate::workspace::{self, Workspace};
use choir_sync::{Mutex, OnceLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Sign convention: forward transform uses `e^{-j2πkn/N}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    Forward,
    Inverse,
}

/// A reusable FFT plan for a fixed size `n` (any `n ≥ 1`).
#[derive(Clone, Debug)]
pub struct FftPlan {
    n: usize,
    kind: PlanKind,
}

#[derive(Clone, Debug)]
enum PlanKind {
    /// `n` is a power of two: iterative radix-2 with a precomputed
    /// half-length twiddle table.
    Radix2 { twiddles: Vec<C64> },
    /// Arbitrary `n` via Bluestein's algorithm: an `m`-point radix-2
    /// convolution with the chirp sequence `e^{-jπk²/n}`.
    Bluestein {
        /// Inner power-of-two convolution length, `m ≥ 2n-1`.
        inner: Box<FftPlan>,
        /// `b[k] = e^{-jπ k²/n}` for `k in 0..n`.
        chirp: Vec<C64>,
        /// Forward `m`-point transform of the zero-extended conjugate chirp.
        chirp_ft: Vec<C64>,
    },
}

impl FftPlan {
    /// Plans a transform of length `n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FftPlan: size must be non-zero");
        if n.is_power_of_two() {
            let half = n / 2;
            let twiddles = (0..half)
                .map(|k| C64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
                .collect();
            FftPlan {
                n,
                kind: PlanKind::Radix2 { twiddles },
            }
        } else {
            // Bluestein: X[k] = b[k] · Σ_n x[n] b[n] · conj(b[k-n])
            // — a linear convolution of a[n] = x[n]b[n] with conj(b),
            // computed as a circular convolution of length m ≥ 2n-1.
            let m = (2 * n - 1).next_power_of_two();
            let inner = FftPlan::new(m);
            let chirp: Vec<C64> = (0..n)
                .map(|k| {
                    // k² mod 2n avoids precision loss for large k.
                    let ksq = (k as u64 * k as u64) % (2 * n as u64);
                    C64::cis(-std::f64::consts::PI * ksq as f64 / n as f64)
                })
                .collect();
            let mut c = vec![C64::ZERO; m];
            c[0] = chirp[0].conj();
            for k in 1..n {
                let v = chirp[k].conj();
                c[k] = v;
                c[m - k] = v;
            }
            inner.transform(&mut c, Direction::Forward);
            FftPlan {
                n,
                kind: PlanKind::Bluestein {
                    inner: Box::new(inner),
                    chirp,
                    chirp_ft: c,
                },
            }
        }
    }

    /// Transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false — a plan has length ≥ 1 by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    fn transform(&self, x: &mut [C64], dir: Direction) {
        workspace::with(|ws| self.transform_ws(x, dir, ws));
    }

    // hot:noalloc — the Bluestein convolution scratch comes from the
    // workspace arena; steady-state transforms are allocation-free.
    fn transform_ws(&self, x: &mut [C64], dir: Direction, ws: &mut Workspace) {
        debug_assert_eq!(x.len(), self.n);
        match &self.kind {
            PlanKind::Radix2 { twiddles } => radix2(x, twiddles, dir),
            PlanKind::Bluestein {
                inner,
                chirp,
                chirp_ft,
            } => {
                let n = self.n;
                let m = inner.len();
                // The inverse transform is the conjugated forward transform:
                // conjugate in, run forward Bluestein, conjugate out.
                if dir == Direction::Inverse {
                    for v in x.iter_mut() {
                        *v = v.conj();
                    }
                }
                let mut a = ws.take(m);
                for k in 0..n {
                    a[k] = x[k] * chirp[k];
                }
                inner.transform_ws(&mut a, Direction::Forward, ws);
                for (av, cv) in a.iter_mut().zip(chirp_ft) {
                    *av = *av * cv;
                }
                inner.transform_ws(&mut a, Direction::Inverse, ws);
                // The private inverse kernel is unnormalised; fold the 1/m in
                // here.
                let scale = 1.0 / m as f64;
                for k in 0..n {
                    x[k] = (a[k] * chirp[k]).scale(scale);
                }
                ws.put(a);
                if dir == Direction::Inverse {
                    for v in x.iter_mut() {
                        *v = v.conj();
                    }
                }
            }
        }
    }

    /// In-place forward transform. `x.len()` must equal [`Self::len`].
    ///
    /// Debug builds verify Parseval's theorem across the boundary
    /// (`‖X‖² = N·‖x‖²`); release builds skip the scan entirely.
    pub fn forward(&self, x: &mut [C64]) {
        workspace::with(|ws| self.forward_into(x, ws));
    }

    /// In-place forward transform drawing any internal scratch (the
    /// Bluestein convolution buffer) from `ws` instead of the heap.
    /// `x.len()` must equal [`Self::len`]. Steady-state calls perform no
    /// allocation; [`Self::forward`] is a thin shim over this using the
    /// per-thread arena.
    // hot:noalloc — scratch comes from the caller's workspace arena.
    pub fn forward_into(&self, x: &mut [C64], ws: &mut Workspace) {
        assert_eq!(x.len(), self.n, "forward: buffer length != plan length");
        #[cfg(debug_assertions)]
        let time_energy = crate::complex::energy(x);
        self.transform_ws(x, Direction::Forward, ws);
        #[cfg(debug_assertions)]
        crate::checks::assert_parseval("FftPlan::forward", time_energy, x);
    }

    /// In-place inverse transform, normalised by `1/n` so that
    /// `inverse(forward(x)) == x`.
    ///
    /// Debug builds verify Parseval's theorem across the boundary;
    /// release builds skip the scan entirely.
    pub fn inverse(&self, x: &mut [C64]) {
        assert_eq!(x.len(), self.n, "inverse: buffer length != plan length");
        #[cfg(debug_assertions)]
        let freq_energy = crate::complex::energy(x);
        self.transform(x, Direction::Inverse);
        let s = 1.0 / self.n as f64;
        for v in x.iter_mut() {
            *v = v.scale(s);
        }
        #[cfg(debug_assertions)]
        crate::checks::assert_parseval_energies(
            "FftPlan::inverse",
            crate::complex::energy(x),
            freq_energy,
            self.n,
        );
    }

    /// Out-of-place forward transform of `x`, zero-padded (or truncated) to
    /// the plan length. This is the common "dechirp then pad by 10×" call in
    /// the Choir pipeline.
    pub fn forward_padded(&self, x: &[C64]) -> Vec<C64> {
        let mut buf = vec![C64::ZERO; self.n];
        let k = x.len().min(self.n);
        buf[..k].copy_from_slice(&x[..k]);
        self.forward(&mut buf);
        buf
    }

    /// Allocation-free [`Self::forward_padded`]: writes the zero-padded
    /// (or truncated) forward transform of `x` into `out`, which must be
    /// exactly the plan length. Scratch comes from `ws`.
    // hot:noalloc — output and scratch are caller-provided.
    pub fn forward_padded_into(&self, x: &[C64], out: &mut [C64], ws: &mut Workspace) {
        assert_eq!(
            out.len(),
            self.n,
            "forward_padded_into: output length != plan length"
        );
        let k = x.len().min(self.n);
        out[..k].copy_from_slice(&x[..k]);
        for v in out[k..].iter_mut() {
            *v = C64::ZERO;
        }
        self.forward_into(out, ws);
    }
}

/// Iterative radix-2 DIT FFT. `twiddles[k] = e^{-j2πk/n}` for `k < n/2`.
fn radix2(x: &mut [C64], twiddles: &[C64], dir: Direction) {
    let n = x.len();
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 0..n - 1 {
        if i < j {
            x.swap(i, j);
        }
        let mut mask = n >> 1;
        while j & mask != 0 {
            j ^= mask;
            mask >>= 1;
        }
        j |= mask;
    }
    // Butterflies: every pass after the permutation is the backend's
    // job (the scalar oracle and the SIMD paths are bit-identical).
    crate::backend::butterflies(x, twiddles, dir == Direction::Forward);
}

/// A thread-safe cache of [`FftPlan`]s keyed by transform size.
///
/// Planning a size costs an `O(n)` twiddle table (plus, for non-power-of-two
/// sizes, two Bluestein setup transforms); paying that inside per-symbol or
/// per-slot loops is pure waste. A cache instance hands out `Arc<FftPlan>`
/// so concurrent decoder workers share one immutable plan per size with no
/// copying and no locking on the transform itself — the mutex guards only
/// the map lookup/insert.
///
/// The cache holds at most [`MAX_CACHED_PLANS`] distinct sizes; asking for
/// more evicts the least-recently-used size (its `Arc` stays valid for
/// holders, only the cache entry is dropped). The Choir pipeline touches a
/// handful of sizes (`2^SF`, `pad·2^SF`, UNB channeliser lengths), so
/// steady-state decoding never evicts — the cap exists so long-lived
/// daemons sweeping many sizes (city-sim, channel surveys) cannot leak an
/// unbounded plan set.
#[derive(Debug, Default)]
pub struct PlanCache {
    state: Mutex<CacheState>,
}

/// Upper bound on distinct sizes a [`PlanCache`] retains at once.
///
/// Sized with headroom: a full decode pipeline touches ~6 sizes, a
/// multi-SF/multi-pad survey a couple dozen. Beyond the cap, the
/// least-recently-used size is evicted and will simply be re-planned on
/// its next use.
pub const MAX_CACHED_PLANS: usize = 32;

/// Map plus recency order, guarded by one mutex. `order` lists cached
/// sizes least-recently-used first; `map` and `order` always hold the
/// same key set.
#[derive(Debug, Default)]
struct CacheState {
    map: HashMap<usize, Arc<FftPlan>>,
    order: Vec<usize>,
}

impl CacheState {
    /// Marks `n` most-recently-used.
    fn touch(&mut self, n: usize) {
        if let Some(pos) = self.order.iter().position(|&k| k == n) {
            self.order.remove(pos);
        }
        self.order.push(n);
    }
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Returns the cached plan for size `n`, planning it on first use.
    ///
    /// Planning happens *outside* the map lock: a Bluestein size runs two
    /// inner setup transforms, and holding the lock across that would
    /// stall every concurrent worker's plan lookup. Two threads racing
    /// the first request for a size may both plan it; the insert is
    /// double-checked and the first `Arc` in wins, so all callers still
    /// share one plan.
    ///
    /// # Panics
    /// Panics if `n == 0` (as [`FftPlan::new`] does).
    pub fn get(&self, n: usize) -> Arc<FftPlan> {
        if let Some(plan) = self.lookup(n) {
            return plan;
        }
        let fresh = Arc::new(FftPlan::new(n));
        self.insert(n, fresh)
    }

    /// Lock, probe, and touch — one short critical section.
    fn lookup(&self, n: usize) -> Option<Arc<FftPlan>> {
        // The facade lock recovers from poisoning: another thread
        // panicking mid-insert leaves the map structurally valid.
        let mut state = self.state.lock();
        let plan = state.map.get(&n).map(Arc::clone)?;
        state.touch(n);
        Some(plan)
    }

    /// Double-checked insert of a freshly planned size: if another
    /// thread won the race, its entry (the first `Arc`) is returned and
    /// `fresh` is dropped. Evicts the least-recently-used size when the
    /// cache is full.
    fn insert(&self, n: usize, fresh: Arc<FftPlan>) -> Arc<FftPlan> {
        let mut state = self.state.lock();
        if let Some(existing) = state.map.get(&n) {
            let plan = Arc::clone(existing);
            state.touch(n);
            return plan;
        }
        if state.map.len() >= MAX_CACHED_PLANS {
            let victim = state.order.remove(0);
            state.map.remove(&victim);
        }
        state.map.insert(n, Arc::clone(&fresh));
        state.order.push(n);
        fresh
    }

    /// Number of distinct sizes currently cached.
    pub fn len(&self) -> usize {
        self.state.lock().map.len()
    }

    /// True when no size has been planned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Returns the process-wide cached plan for size `n` (planning it on first
/// use). This is the preferred way to obtain a plan outside hot loops that
/// can hoist their own [`FftPlan`].
///
/// # Panics
/// Panics if `n == 0`.
pub fn plan(n: usize) -> Arc<FftPlan> {
    static GLOBAL: OnceLock<PlanCache> = OnceLock::new();
    GLOBAL.get_or_init(PlanCache::new).get(n)
}

/// One-shot forward FFT (via the process-wide [`PlanCache`]). Prefer a
/// hoisted [`FftPlan`] in loops over a single known size.
pub fn fft(x: &[C64]) -> Vec<C64> {
    let plan = plan(x.len());
    let mut buf = x.to_vec();
    plan.forward(&mut buf);
    buf
}

/// One-shot inverse FFT (normalised; via the process-wide [`PlanCache`]).
/// Prefer a hoisted [`FftPlan`] in loops over a single known size.
pub fn ifft(x: &[C64]) -> Vec<C64> {
    let plan = plan(x.len());
    let mut buf = x.to_vec();
    plan.inverse(&mut buf);
    buf
}

/// Reference O(n²) DFT, used by tests and available for tiny sizes.
pub fn dft_naive(x: &[C64]) -> Vec<C64> {
    let n = x.len();
    (0..n)
        .map(|k| {
            (0..n)
                .map(|m| {
                    x[m] * C64::cis(-2.0 * std::f64::consts::PI * (k * m % n) as f64 / n as f64)
                })
                .sum()
        })
        .collect()
}

/// Swaps the two halves of a spectrum so that DC sits in the middle
/// (`fftshift`). For odd lengths the extra sample goes to the first half of
/// the output, matching NumPy's convention.
pub fn fftshift<T: Clone>(x: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(x.len());
    fftshift_into(x, &mut out);
    out
}

/// Allocation-free [`fftshift`]: clears `out` and fills it with the
/// shifted spectrum, reusing `out`'s existing capacity.
pub fn fftshift_into<T: Clone>(x: &[T], out: &mut Vec<T>) {
    let n = x.len();
    let half = n.div_ceil(2);
    out.clear();
    out.extend_from_slice(&x[half..]);
    out.extend_from_slice(&x[..half]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn assert_close(a: &[C64], b: &[C64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x:?} vs {y:?} (tol {tol})");
        }
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let mut x = vec![C64::ZERO; 8];
        x[0] = C64::ONE;
        let y = fft(&x);
        for v in &y {
            assert!((v - C64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_hits_single_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<C64> = (0..n)
            .map(|t| C64::cis(2.0 * std::f64::consts::PI * k0 as f64 * t as f64 / n as f64))
            .collect();
        let y = fft(&x);
        for (k, v) in y.iter().enumerate() {
            if k == k0 {
                assert!((v.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "bin {k} leaked {}", v.abs());
            }
        }
    }

    #[test]
    fn matches_naive_dft_pow2() {
        let x: Vec<C64> = (0..32)
            .map(|i| c64((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
            .collect();
        assert_close(&fft(&x), &dft_naive(&x), 1e-9);
    }

    #[test]
    fn matches_naive_dft_arbitrary_sizes() {
        for n in [
            1usize, 2, 3, 5, 6, 7, 10, 12, 15, 17, 20, 48, 100, 160, 1280,
        ] {
            let x: Vec<C64> = (0..n)
                .map(|i| c64((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos() * 0.5))
                .collect();
            let tol = 1e-7 * (n as f64).max(1.0);
            assert_close(&fft(&x), &dft_naive(&x), tol);
        }
    }

    #[test]
    fn roundtrip_pow2() {
        let x: Vec<C64> = (0..128).map(|i| c64(i as f64, -(i as f64) * 0.5)).collect();
        assert_close(&ifft(&fft(&x)), &x, 1e-9);
    }

    #[test]
    fn roundtrip_bluestein() {
        let x: Vec<C64> = (0..1280)
            .map(|i| c64((i as f64 * 0.123).sin(), (i as f64 * 0.456).cos()))
            .collect();
        assert_close(&ifft(&fft(&x)), &x, 1e-7);
    }

    #[test]
    fn linearity() {
        let n = 40;
        let a: Vec<C64> = (0..n).map(|i| c64(i as f64, 0.0)).collect();
        let b: Vec<C64> = (0..n).map(|i| c64(0.0, (i as f64).sqrt())).collect();
        let sum: Vec<C64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fsum = fft(&sum);
        let manual: Vec<C64> = fa.iter().zip(&fb).map(|(x, y)| x + y).collect();
        assert_close(&fsum, &manual, 1e-8);
    }

    #[test]
    fn parseval_energy_conserved() {
        let x: Vec<C64> = (0..256)
            .map(|i| c64((i as f64 * 0.05).sin(), (i as f64 * 0.02).cos()))
            .collect();
        let y = fft(&x);
        let ex = crate::complex::energy(&x);
        let ey = crate::complex::energy(&y) / x.len() as f64;
        assert!((ex - ey).abs() / ex < 1e-10);
    }

    #[test]
    fn forward_padded_zero_pads() {
        let plan = FftPlan::new(16);
        let x = [C64::ONE; 4];
        let y = plan.forward_padded(&x);
        assert_eq!(y.len(), 16);
        // DC bin equals the sum of the input samples.
        assert!((y[0] - c64(4.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn forward_padded_truncates() {
        let plan = FftPlan::new(4);
        let x = [C64::ONE; 8];
        let y = plan.forward_padded(&x);
        assert_eq!(y.len(), 4);
        assert!((y[0] - c64(4.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn fftshift_even_odd() {
        assert_eq!(fftshift(&[0, 1, 2, 3]), vec![2, 3, 0, 1]);
        assert_eq!(fftshift(&[0, 1, 2, 3, 4]), vec![3, 4, 0, 1, 2]);
        assert_eq!(fftshift(&[7]), vec![7]);
    }

    #[test]
    fn zero_padding_interpolates_spectrum() {
        // A tone at fractional frequency: the padded spectrum's maximum must
        // land within one unpadded-bin of the true frequency, at 10× finer
        // resolution.
        let n = 128;
        let pad = 10;
        let f0 = 30.37; // cycles per n samples
        let x: Vec<C64> = (0..n)
            .map(|t| C64::cis(2.0 * std::f64::consts::PI * f0 * t as f64 / n as f64))
            .collect();
        let plan = FftPlan::new(n * pad);
        let y = plan.forward_padded(&x);
        let (kmax, _) = y
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .unwrap();
        let est = kmax as f64 / pad as f64;
        assert!((est - f0).abs() < 0.06, "est {est} vs {f0}");
    }

    #[test]
    #[should_panic(expected = "size must be non-zero")]
    fn zero_size_plan_panics() {
        let _ = FftPlan::new(0);
    }

    #[test]
    fn plan_cache_reuses_plans() {
        let cache = PlanCache::new();
        assert!(cache.is_empty());
        let a = cache.get(256);
        let b = cache.get(256);
        assert!(Arc::ptr_eq(&a, &b), "same size must share one plan");
        let c = cache.get(1280);
        assert_eq!(c.len(), 1280);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn plan_cache_shared_across_threads() {
        let cache = PlanCache::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4).map(|_| scope.spawn(|| cache.get(512))).collect();
            let plans: Vec<Arc<FftPlan>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for p in &plans[1..] {
                assert!(Arc::ptr_eq(&plans[0], p));
            }
        });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn global_plan_matches_fresh_plan() {
        let x: Vec<C64> = (0..96)
            .map(|i| c64((i as f64 * 0.21).sin(), (i as f64 * 0.83).cos()))
            .collect();
        let via_cache = plan(96).forward_padded(&x);
        let fresh = FftPlan::new(96).forward_padded(&x);
        assert_close(&via_cache, &fresh, 1e-12);
    }

    #[test]
    #[should_panic(expected = "size must be non-zero")]
    fn plan_cache_zero_size_panics() {
        let _ = PlanCache::new().get(0);
    }

    #[test]
    fn plan_cache_is_bounded() {
        let cache = PlanCache::new();
        for n in 1..=(MAX_CACHED_PLANS + 8) {
            let _ = cache.get(n);
            assert!(cache.len() <= MAX_CACHED_PLANS);
        }
        assert_eq!(cache.len(), MAX_CACHED_PLANS);
    }

    #[test]
    fn plan_cache_evicts_least_recently_used() {
        let cache = PlanCache::new();
        let first = cache.get(1);
        for n in 2..=MAX_CACHED_PLANS {
            let _ = cache.get(n);
        }
        // Touch size 1 so size 2 becomes the LRU victim.
        assert!(Arc::ptr_eq(&first, &cache.get(1)));
        let _ = cache.get(MAX_CACHED_PLANS + 1);
        assert_eq!(cache.len(), MAX_CACHED_PLANS);
        // Size 1 survived the eviction; size 2 was dropped and is
        // re-planned (a fresh Arc) on its next request.
        assert!(Arc::ptr_eq(&first, &cache.get(1)));
        let two_a = cache.get(2);
        let two_b = cache.get(2);
        assert!(Arc::ptr_eq(&two_a, &two_b));
    }

    #[test]
    fn plan_cache_raced_insert_first_arc_wins() {
        // Exercises the double-checked insert path directly: a plan
        // arriving second for an already-cached size is discarded in
        // favour of the cached Arc. (The interleaving itself is model-
        // checked in tests/model.rs.)
        let cache = PlanCache::new();
        let winner = cache.get(96);
        let loser = Arc::new(FftPlan::new(96));
        let kept = cache.insert(96, loser);
        assert!(Arc::ptr_eq(&winner, &kept));
        assert_eq!(cache.len(), 1);
    }
}
