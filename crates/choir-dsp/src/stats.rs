//! Scalar statistics used across the experiment harness: means, deviations,
//! percentiles, empirical CDFs (Fig. 7 of the paper plots CDFs of hardware
//! offsets) and histograms.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Population variance (divides by `n`); `0.0` for fewer than two samples.
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Root mean square.
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
    }
}

/// Linear-interpolated percentile, `p ∈ [0, 100]`.
///
/// # Panics
/// Panics on an empty slice or `p` outside `[0, 100]`.
pub fn percentile(x: &[f64], p: f64) -> f64 {
    assert!(!x.is_empty(), "percentile: empty input");
    assert!((0.0..=100.0).contains(&p), "percentile: p out of range");
    let mut s = x.to_vec();
    s.sort_by(f64::total_cmp);
    if s.len() == 1 {
        return s[0];
    }
    let rank = p / 100.0 * (s.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    s[lo] * (1.0 - frac) + s[hi] * frac
}

/// Median (50th percentile).
pub fn median(x: &[f64]) -> f64 {
    percentile(x, 50.0)
}

/// Empirical CDF: returns `(value, F(value))` pairs for the sorted samples,
/// with `F` stepping by `1/n` per sample — the format Fig. 7(a,b) plots.
pub fn empirical_cdf(x: &[f64]) -> Vec<(f64, f64)> {
    let mut s = x.to_vec();
    s.sort_by(f64::total_cmp);
    let n = s.len() as f64;
    s.into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// Fixed-width histogram over `[lo, hi)` with `bins` buckets. Values outside
/// the range are clamped into the edge buckets.
pub fn histogram(x: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "histogram: zero bins");
    assert!(hi > lo, "histogram: empty range");
    let mut h = vec![0usize; bins];
    let w = (hi - lo) / bins as f64;
    for &v in x {
        let idx = (((v - lo) / w).floor() as isize).clamp(0, bins as isize - 1) as usize;
        h[idx] += 1;
    }
    h
}

/// Two-sided geometric mean of positive ratios — used when averaging gain
/// factors across runs (so 2× and 0.5× average to 1×).
pub fn geometric_mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    (x.iter().map(|v| v.ln()).sum::<f64>() / x.len() as f64).exp()
}

/// Kolmogorov–Smirnov distance between an empirical sample and the uniform
/// CDF on `[lo, hi]`. Fig. 7 argues observed offsets are ~uniform over the
/// bin; the testbed asserts this with a KS bound.
pub fn ks_distance_uniform(x: &[f64], lo: f64, hi: f64) -> f64 {
    assert!(hi > lo, "ks_distance_uniform: empty range");
    let mut s = x.to_vec();
    s.sort_by(f64::total_cmp);
    let n = s.len() as f64;
    let mut d: f64 = 0.0;
    for (i, v) in s.iter().enumerate() {
        let u = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        let f_lo = i as f64 / n;
        let f_hi = (i + 1) as f64 / n;
        d = d.max((u - f_lo).abs()).max((u - f_hi).abs());
    }
    d
}

// Tests assert on exactly-representable values (0.0, bin centres).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_empty() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_and_std() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&x) - 4.0).abs() < 1e-12);
        assert!((std_dev(&x) - 2.0).abs() < 1e-12);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn rms_known() {
        assert!((rms(&[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(rms(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&x, 0.0), 1.0);
        assert_eq!(percentile(&x, 100.0), 4.0);
        assert!((percentile(&x, 50.0) - 2.5).abs() < 1e-12);
        assert!((median(&x) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[7.0], 33.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "percentile: empty input")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let x = [3.0, 1.0, 2.0, 2.0];
        let cdf = empirical_cdf(&x);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let h = histogram(&[0.1, 0.2, 0.6, 1.5, -3.0], 0.0, 1.0, 2);
        // -3.0 clamps to bucket 0; 1.5 clamps to bucket 1.
        assert_eq!(h, vec![3, 2]);
    }

    #[test]
    fn geometric_mean_of_reciprocal_pair_is_one() {
        assert!((geometric_mean(&[2.0, 0.5]) - 1.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn ks_uniform_samples_small_distance() {
        // Evenly spaced points have KS distance 1/n.
        let n = 100;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let d = ks_distance_uniform(&x, 0.0, 1.0);
        assert!(d <= 1.0 / n as f64 + 1e-12, "d = {d}");
    }

    #[test]
    fn ks_concentrated_samples_large_distance() {
        let x = vec![0.5; 50];
        let d = ks_distance_uniform(&x, 0.0, 1.0);
        assert!(d > 0.45, "d = {d}");
    }
}
