//! Peak detection and spectral-leakage modelling.
//!
//! After dechirping, every colliding LoRa transmitter appears as one tone in
//! the symbol spectrum. Because carrier-frequency and timing offsets are not
//! integer multiples of an FFT bin, each tone leaks into neighbouring bins as
//! a Dirichlet (periodic sinc) kernel — Sec. 5.1 of the paper. This module
//! finds peaks in (zero-padded) spectra, refines their fractional position,
//! and models the leakage pattern used by the residual fit.

use crate::complex::C64;

/// A detected spectral peak.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Peak {
    /// Peak position in *unpadded* bin units (fractional). For a spectrum
    /// zero-padded by `pad`, padded index `i` maps to `i / pad`.
    pub pos: f64,
    /// Peak magnitude `|X[k]|` at the maximum.
    pub height: f64,
    /// Complex spectrum value at the maximum (coarse channel estimate).
    pub value: C64,
}

/// Estimates the noise floor of a magnitude spectrum as its median.
///
/// The median is robust to a handful of strong peaks: with `K` transmitters
/// and `N` bins, at most `K·pad·O(1)` bins hold main lobes, a small fraction
/// of the spectrum.
///
/// Runs inside the refine loop, so the scratch copy comes from the
/// per-thread [`workspace`](crate::workspace) arena and the median is
/// found by `select_nth_unstable_by` (O(n) expected) rather than a full
/// sort. `total_cmp` is a total order, so the selected ranks hold
/// exactly the values a full `total_cmp` sort would place there —
/// the result is bit-identical to the sort-based formulation
/// (regression-tested below on adversarial inputs).
// hot:noalloc — scratch comes from the thread-local f64 arena.
pub fn noise_floor(mags: &[f64]) -> f64 {
    if mags.is_empty() {
        return 0.0;
    }
    let n = mags.len();
    let mut scratch = crate::workspace::take_f64(n);
    scratch.copy_from_slice(mags);
    let (lo, nth, _) = scratch.select_nth_unstable_by(n / 2, f64::total_cmp);
    let floor = if n % 2 == 1 {
        *nth
    } else {
        // Even length: the lower median is the total_cmp-maximum of the
        // lower partition (rank n/2 − 1). Folded with total_cmp rather
        // than `f64::max` so NaNs and signed zeros keep the exact total
        // order the sort-based median used.
        let mut lo_max = lo[0];
        for &v in &lo[1..] {
            if lo_max.total_cmp(&v).is_lt() {
                lo_max = v;
            }
        }
        0.5 * (lo_max + *nth)
    };
    crate::workspace::put_f64(scratch);
    floor
}

/// Configuration for [`find_peaks`].
#[derive(Clone, Copy, Debug)]
pub struct PeakConfig {
    /// Zero-padding factor of the spectrum (1 = no padding).
    pub pad: usize,
    /// Detection threshold as a multiple of the spectrum's median magnitude.
    /// Peaks below `threshold · median` are ignored.
    pub threshold: f64,
    /// Exclusion radius around an accepted peak, in unpadded bins. Bins
    /// within this radius are masked before searching for the next peak, so
    /// the main lobe of a tone is only reported once.
    pub min_separation: f64,
    /// Upper bound on the number of peaks to return.
    pub max_peaks: usize,
    /// Leakage-rejection margin: a candidate is only accepted when its
    /// magnitude exceeds `leak_margin ×` the total leakage predicted at
    /// its position from the already-accepted (stronger) peaks. This is
    /// what keeps side-lobes of strong transmitters from being reported as
    /// users (Sec. 5.1).
    pub leak_margin: f64,
    /// Coefficient of the inter-symbol-interference skirt envelope. A tone
    /// whose transmitter is delayed by a fractional number of chips
    /// carries a phase step at the symbol boundary inside the window; its
    /// skirt decays like `coeff/x` (no Dirichlet nulls). The leakage
    /// prediction uses `max(dirichlet, isi_coeff/x)`. Set to 0 to model
    /// pure tones only.
    pub isi_coeff: f64,
}

impl Default for PeakConfig {
    fn default() -> Self {
        PeakConfig {
            pad: 10,
            threshold: 4.0,
            min_separation: 0.8,
            max_peaks: 24,
            leak_margin: 2.0,
            isi_coeff: 0.9,
        }
    }
}

/// Finds up to `cfg.max_peaks` strongest peaks in a complex spectrum,
/// greedily, masking `cfg.min_separation` unpadded bins around each accepted
/// peak. Positions are returned in unpadded-bin units and refined by
/// parabolic interpolation. The spectrum is treated as circular (it is a
/// DFT).
pub fn find_peaks(spectrum: &[C64], cfg: &PeakConfig) -> Vec<Peak> {
    let np = spectrum.len();
    if np == 0 {
        return Vec::new();
    }
    assert!(cfg.pad >= 1, "find_peaks: pad must be >= 1");
    assert_eq!(
        np % cfg.pad,
        0,
        "find_peaks: spectrum length not a multiple of pad"
    );
    let n_sym = np / cfg.pad; // unpadded symbol length, sets the leakage kernel
                              // Magnitude and masking scratch are per-call temporaries of spectrum
                              // length — recycled through the thread arena like the rest of the
                              // refine loop's buffers.
    let mut mags = crate::workspace::take_f64(np);
    for (m, z) in mags.iter_mut().zip(spectrum) {
        *m = z.abs();
    }
    let floor = noise_floor(&mags);
    let thresh = floor * cfg.threshold;
    let excl = ((cfg.min_separation * cfg.pad as f64).round() as usize).max(1);

    let mut masked = crate::workspace::take_f64(np);
    masked.copy_from_slice(&mags);
    let mut peaks: Vec<Peak> = Vec::new();
    // Bound the scan: each iteration masks at least one bin, but cap the
    // number of rejected candidates we are willing to examine.
    let mut rejections_left = 8 * cfg.max_peaks;
    while peaks.len() < cfg.max_peaks {
        let (imax, &hmax) = match masked.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)) {
            Some(p) => p,
            None => break,
        };
        if hmax <= thresh || hmax <= 0.0 {
            break;
        }
        // Parabolic refinement on the three neighbouring padded bins
        // (uses the unmasked magnitudes).
        let prev = mags[(imax + np - 1) % np];
        let next = mags[(imax + 1) % np];
        let refined = parabolic_refine(prev, mags[imax], next);
        let pos_padded = imax as f64 + refined;
        let pos = (pos_padded.rem_euclid(np as f64)) / cfg.pad as f64;
        // Leakage test: predicted magnitude at `pos` from the accepted
        // (stronger) peaks' Dirichlet kernels. A genuine extra transmitter
        // must rise above that prediction; a side-lobe will match it.
        let predicted: f64 = peaks
            .iter()
            .map(|p| {
                let mut d = (pos - p.pos).rem_euclid(n_sym as f64);
                if d > n_sym as f64 / 2.0 {
                    d = n_sym as f64 - d;
                }
                let skirt = if cfg.isi_coeff > 0.0 {
                    cfg.isi_coeff / d.max(0.7)
                } else {
                    0.0
                };
                p.height * dirichlet_mag(n_sym, d).max(skirt)
            })
            .sum();
        if hmax > cfg.leak_margin * predicted {
            peaks.push(Peak {
                pos,
                height: mags[imax],
                value: spectrum[imax],
            });
        } else {
            if rejections_left == 0 {
                break;
            }
            rejections_left -= 1;
        }
        // Mask the exclusion zone (circularly) whether accepted or not, so
        // the scan always makes progress.
        for d in 0..=excl {
            masked[(imax + d) % np] = f64::NEG_INFINITY;
            masked[(imax + np - d) % np] = f64::NEG_INFINITY;
        }
    }
    crate::workspace::put_f64(masked);
    crate::workspace::put_f64(mags);
    peaks
}

/// Three-point parabolic interpolation: returns the sub-bin offset in
/// `[-0.5, 0.5]` of the true maximum given magnitudes at `k-1`, `k`, `k+1`.
pub fn parabolic_refine(prev: f64, peak: f64, next: f64) -> f64 {
    let denom = prev - 2.0 * peak + next;
    if denom.abs() < 1e-30 {
        return 0.0;
    }
    let d = 0.5 * (prev - next) / denom;
    d.clamp(-0.5, 0.5)
}

/// The Dirichlet (periodic sinc) kernel: the DFT of a length-`n` complex
/// exponential at fractional frequency `f` (in bins), evaluated at bin `k`
/// of an `n·pad`-point zero-padded transform.
///
/// `D(x) = sin(πx) / (n · sin(πx/n)) · e^{jπx(n-1)/n}` with `x = f - k/pad`,
/// normalised so that `|D(0)| = 1`.
pub fn dirichlet(n: usize, f: f64, k_padded: f64, pad: usize) -> C64 {
    let x = f - k_padded / pad as f64;
    let nn = n as f64;
    let num = (std::f64::consts::PI * x).sin();
    let den = nn * (std::f64::consts::PI * x / nn).sin();
    let mag = if den.abs() < 1e-300 {
        // x is a multiple of n: the kernel is 1 there (periodic main lobe).
        1.0
    } else {
        num / den
    };
    let phase = std::f64::consts::PI * x * (nn - 1.0) / nn;
    C64::from_polar(
        mag.abs(),
        phase + if mag < 0.0 { std::f64::consts::PI } else { 0.0 },
    )
}

/// Magnitude of the Dirichlet kernel at distance `x` bins from the tone
/// (i.e. how much a tone leaks into a bin `x` away). `n` is the symbol
/// length.
pub fn dirichlet_mag(n: usize, x: f64) -> f64 {
    let nn = n as f64;
    let den = nn * (std::f64::consts::PI * x / nn).sin();
    if den.abs() < 1e-300 {
        1.0
    } else {
        ((std::f64::consts::PI * x).sin() / den).abs()
    }
}

// Tests assert on exactly-representable values (0.0, bin centres).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::FftPlan;

    fn tone(n: usize, f: f64, amp: f64) -> Vec<C64> {
        (0..n)
            .map(|t| C64::from_polar(amp, 2.0 * std::f64::consts::PI * f * t as f64 / n as f64))
            .collect()
    }

    fn spectrum_of(x: &[C64], pad: usize) -> Vec<C64> {
        FftPlan::new(x.len() * pad).forward_padded(x)
    }

    #[test]
    fn noise_floor_median() {
        assert_eq!(noise_floor(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(noise_floor(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(noise_floor(&[]), 0.0);
    }

    /// The sort-based median `noise_floor` computed before the
    /// select-based rewrite; kept as the regression reference.
    fn noise_floor_by_sort(mags: &[f64]) -> f64 {
        if mags.is_empty() {
            return 0.0;
        }
        let mut sorted = mags.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        }
    }

    #[test]
    fn noise_floor_bit_identical_to_sort_reference() {
        let denorm = f64::MIN_POSITIVE / 4.0;
        let adversarial: Vec<Vec<f64>> = vec![
            vec![0.0, -0.0, 0.0, -0.0],
            vec![-0.0, 0.0],
            vec![denorm, -denorm, 0.0, denorm, f64::MIN_POSITIVE],
            vec![1e300, 1e-300, -1e300, 2.5e-308, 3.0],
            vec![f64::NAN, 1.0, 2.0, 3.0],
            vec![f64::NAN, -f64::NAN, f64::INFINITY, f64::NEG_INFINITY],
            vec![5.0; 17],
            vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0],
            (0..257)
                .map(|i| ((i * 2654435761_u64 as usize) % 997) as f64 - 498.0)
                .collect(),
            (0..256).rev().map(|i| i as f64 * 1e-200).collect(),
        ];
        for (case, mags) in adversarial.iter().enumerate() {
            let got = noise_floor(mags);
            let want = noise_floor_by_sort(mags);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "case {case}: select-based {got:e} != sort-based {want:e}"
            );
        }
    }

    #[test]
    fn find_peaks_output_unchanged_by_scratch_routing() {
        // Peak output (positions, heights, values) on a busy spectrum
        // must be bit-identical run-to-run — pooled scratch re-zeroing
        // means results cannot depend on arena history.
        let n = 128;
        let mut x = tone(n, 20.3, 1.0);
        for (a, b) in x.iter_mut().zip(tone(n, 70.7, 0.6)) {
            *a += b;
        }
        let spec = spectrum_of(&x, 10);
        let first = find_peaks(&spec, &PeakConfig::default());
        for _ in 0..3 {
            let again = find_peaks(&spec, &PeakConfig::default());
            assert_eq!(first.len(), again.len());
            for (p, q) in first.iter().zip(&again) {
                assert_eq!(p.pos.to_bits(), q.pos.to_bits());
                assert_eq!(p.height.to_bits(), q.height.to_bits());
                assert_eq!(p.value.re.to_bits(), q.value.re.to_bits());
                assert_eq!(p.value.im.to_bits(), q.value.im.to_bits());
            }
        }
    }

    #[test]
    fn single_integer_tone_detected() {
        let n = 128;
        let x = tone(n, 37.0, 1.0);
        let spec = spectrum_of(&x, 10);
        let peaks = find_peaks(&spec, &PeakConfig::default());
        assert_eq!(peaks.len(), 1);
        assert!((peaks[0].pos - 37.0).abs() < 0.05, "pos {}", peaks[0].pos);
        assert!((peaks[0].height - n as f64).abs() / (n as f64) < 0.01);
    }

    #[test]
    fn single_fractional_tone_position_refined() {
        let n = 128;
        let f0 = 50.43;
        let x = tone(n, f0, 1.0);
        let spec = spectrum_of(&x, 10);
        let peaks = find_peaks(&spec, &PeakConfig::default());
        assert_eq!(peaks.len(), 1);
        assert!((peaks[0].pos - f0).abs() < 0.05, "pos {}", peaks[0].pos);
    }

    #[test]
    fn two_tones_both_found_in_order_of_strength() {
        let n = 128;
        let mut x = tone(n, 20.3, 1.0);
        for (a, b) in x.iter_mut().zip(tone(n, 70.7, 0.6)) {
            *a += b;
        }
        let spec = spectrum_of(&x, 10);
        let peaks = find_peaks(&spec, &PeakConfig::default());
        assert_eq!(peaks.len(), 2);
        assert!((peaks[0].pos - 20.3).abs() < 0.1);
        assert!((peaks[1].pos - 70.7).abs() < 0.1);
        assert!(peaks[0].height > peaks[1].height);
    }

    #[test]
    fn sidelobes_not_reported_as_peaks() {
        // One strong tone: its side-lobes are well above the noise floor of
        // an otherwise empty spectrum, but must be masked by min_separation.
        let n = 128;
        let x = tone(n, 64.5, 1.0); // worst case: half-bin offset, max leakage
        let spec = spectrum_of(&x, 10);
        let cfg = PeakConfig {
            max_peaks: 8,
            ..PeakConfig::default()
        };
        let peaks = find_peaks(&spec, &cfg);
        // All detected peaks beyond the first must be far from the tone or
        // absent entirely; with a clean tone only sidelobes exist, and the
        // strongest sidelobe of a Dirichlet kernel is ~13 dB down but decays;
        // the median threshold should suppress distant ones. Allow the main
        // peak plus at most the nearest sidelobe pair leakage artifacts but
        // verify the main peak dominates.
        assert!(!peaks.is_empty());
        assert!((peaks[0].pos - 64.5).abs() < 0.1);
        for p in &peaks[1..] {
            assert!(p.height < 0.3 * peaks[0].height);
        }
    }

    #[test]
    fn near_far_weak_peak_found() {
        // 20 dB power imbalance, well-separated tones.
        let n = 128;
        let mut x = tone(n, 30.2, 1.0);
        for (a, b) in x.iter_mut().zip(tone(n, 90.6, 0.1)) {
            *a += b;
        }
        let spec = spectrum_of(&x, 10);
        let cfg = PeakConfig {
            threshold: 3.0,
            ..PeakConfig::default()
        };
        let peaks = find_peaks(&spec, &cfg);
        assert!(peaks.len() >= 2);
        assert!((peaks[1].pos - 90.6).abs() < 0.15, "pos {}", peaks[1].pos);
    }

    #[test]
    fn max_peaks_respected() {
        let n = 128;
        let mut x = vec![C64::ZERO; n];
        for f in [10.0, 30.0, 50.0, 70.0, 90.0, 110.0] {
            for (a, b) in x.iter_mut().zip(tone(n, f, 1.0)) {
                *a += b;
            }
        }
        let spec = spectrum_of(&x, 4);
        let cfg = PeakConfig {
            pad: 4,
            max_peaks: 3,
            ..PeakConfig::default()
        };
        assert_eq!(find_peaks(&spec, &cfg).len(), 3);
    }

    #[test]
    fn empty_spectrum_no_peaks() {
        assert!(find_peaks(&[], &PeakConfig::default()).is_empty());
        let zeros = vec![C64::ZERO; 640];
        assert!(find_peaks(&zeros, &PeakConfig::default()).is_empty());
    }

    #[test]
    fn parabolic_refine_symmetric() {
        assert_eq!(parabolic_refine(1.0, 2.0, 1.0), 0.0);
        assert!(parabolic_refine(1.0, 2.0, 1.5) > 0.0);
        assert!(parabolic_refine(1.5, 2.0, 1.0) < 0.0);
        // Degenerate flat case.
        assert_eq!(parabolic_refine(2.0, 2.0, 2.0), 0.0);
    }

    #[test]
    fn dirichlet_peak_is_unity_and_nulls_at_integers() {
        let n = 128;
        assert!((dirichlet_mag(n, 0.0) - 1.0).abs() < 1e-12);
        for k in 1..10 {
            assert!(dirichlet_mag(n, k as f64) < 1e-10, "null at {k}");
        }
        // Half-bin leakage is about 2/π ≈ 0.64 for large n.
        let half = dirichlet_mag(n, 0.5);
        assert!((half - 2.0 / std::f64::consts::PI).abs() < 0.01);
    }

    #[test]
    fn dirichlet_matches_fft_of_tone() {
        // |FFT(tone at f)| at padded bin k should equal n·|D(f - k/pad)|.
        let n = 64;
        let pad = 8;
        let f0 = 20.3;
        let x = tone(n, f0, 1.0);
        let spec = spectrum_of(&x, pad);
        for k in [100usize, 155, 162, 170, 200] {
            let model = n as f64 * dirichlet(n, f0, k as f64, pad).abs();
            let actual = spec[k].abs();
            assert!(
                (model - actual).abs() < 1e-6 * n as f64,
                "bin {k}: model {model} vs actual {actual}"
            );
        }
    }
}
