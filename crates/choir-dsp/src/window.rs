//! Window functions.
//!
//! The dechirped symbol is effectively a rectangular-windowed complex
//! exponential, which is what gives the Dirichlet leakage Choir exploits.
//! Tapered windows are provided for spectrogram rendering (Fig. 2/3) and
//! for ablations that trade leakage against main-lobe width.

/// Supported window shapes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Window {
    /// All-ones window (the LoRa demodulator's implicit window).
    Rectangular,
    /// Hann: `0.5 − 0.5·cos(2πn/(N−1))`.
    Hann,
    /// Hamming: `0.54 − 0.46·cos(2πn/(N−1))`.
    Hamming,
    /// Blackman (a0=0.42, a1=0.5, a2=0.08).
    Blackman,
}

impl Window {
    /// Generates the window coefficients for length `n` (symmetric form).
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let denom = (n - 1) as f64;
        (0..n)
            .map(|i| {
                let x = 2.0 * std::f64::consts::PI * i as f64 / denom;
                match self {
                    Window::Rectangular => 1.0,
                    Window::Hann => 0.5 - 0.5 * x.cos(),
                    Window::Hamming => 0.54 - 0.46 * x.cos(),
                    Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
                }
            })
            .collect()
    }

    /// Coherent gain: mean of the coefficients (1.0 for rectangular).
    pub fn coherent_gain(self, n: usize) -> f64 {
        let c = self.coefficients(n);
        if c.is_empty() {
            0.0
        } else {
            c.iter().sum::<f64>() / c.len() as f64
        }
    }
}

/// Multiplies a complex signal by a window in place.
///
/// # Panics
/// Panics when lengths differ.
pub fn apply_window(x: &mut [crate::complex::C64], w: &[f64]) {
    assert_eq!(x.len(), w.len(), "apply_window: length mismatch");
    for (v, &wi) in x.iter_mut().zip(w) {
        *v = v.scale(wi);
    }
}

// Tests assert on exactly-representable values (0.0, bin centres).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c64, C64};

    #[test]
    fn rectangular_is_all_ones() {
        assert_eq!(Window::Rectangular.coefficients(4), vec![1.0; 4]);
    }

    #[test]
    fn hann_endpoints_zero_and_symmetric() {
        let w = Window::Hann.coefficients(9);
        assert!(w[0].abs() < 1e-12);
        assert!(w[8].abs() < 1e-12);
        assert!((w[4] - 1.0).abs() < 1e-12);
        for i in 0..4 {
            assert!((w[i] - w[8 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn hamming_endpoints_nonzero() {
        let w = Window::Hamming.coefficients(8);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!(w.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn blackman_peak_near_unity() {
        let w = Window::Blackman.coefficients(101);
        let max = w.iter().cloned().fold(f64::MIN, f64::max);
        assert!((max - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lengths() {
        assert!(Window::Hann.coefficients(0).is_empty());
        assert_eq!(Window::Hann.coefficients(1), vec![1.0]);
        assert_eq!(Window::Hann.coherent_gain(0), 0.0);
    }

    #[test]
    fn coherent_gain_rectangular() {
        assert_eq!(Window::Rectangular.coherent_gain(16), 1.0);
        let g = Window::Hann.coherent_gain(1024);
        assert!((g - 0.5).abs() < 0.01, "hann gain {g}");
    }

    #[test]
    fn apply_window_scales() {
        let mut x = vec![c64(2.0, 2.0); 3];
        apply_window(&mut x, &[0.0, 0.5, 1.0]);
        assert_eq!(x[0], C64::ZERO);
        assert_eq!(x[1], c64(1.0, 1.0));
        assert_eq!(x[2], c64(2.0, 2.0));
    }
}
