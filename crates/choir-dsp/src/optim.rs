//! Derivative-free local optimisation on locally convex objectives.
//!
//! Sec. 5.1 of the paper observes that the residual `R(f1, …, fK)` is
//! locally convex in the frequency-offset hypotheses (Fig. 4) and minimises
//! it with stochastic gradient descent from random starting points. We
//! provide:
//!
//! * [`golden_section`] — exact 1-D line search on a unimodal interval;
//! * [`cyclic_coordinate_descent`] — per-coordinate golden-section sweeps,
//!   which converges fast on separable-ish locally convex residuals;
//! * [`gradient_descent`] — numeric-gradient descent with backtracking line
//!   search (the paper's method, minus the stochasticity of mini-batches);
//! * [`multi_start`] — wraps any local optimiser with random restarts to
//!   escape the side-lobe local minima of the residual surface.

/// Result of an optimisation run.
#[derive(Clone, Debug, PartialEq)]
pub struct Optimum {
    /// Minimising point.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Number of objective evaluations spent.
    pub evals: usize,
}

/// Golden-section search for the minimum of a unimodal `f` on `[a, b]`.
/// Returns `(x_min, f(x_min))` with bracket width ≤ `tol`.
pub fn golden_section<F: FnMut(f64) -> f64>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    tol: f64,
) -> (f64, f64) {
    assert!(b >= a, "golden_section: b < a");
    const INVPHI: f64 = 0.618_033_988_749_894_9; // 1/φ
    let mut c = b - (b - a) * INVPHI;
    let mut d = a + (b - a) * INVPHI;
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INVPHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INVPHI;
            fd = f(d);
        }
    }
    let xm = 0.5 * (a + b);
    let fm = f(xm);
    if fm <= fc && fm <= fd {
        (xm, fm)
    } else if fc < fd {
        (c, fc)
    } else {
        (d, fd)
    }
}

/// Cyclic coordinate descent: repeatedly performs a golden-section line
/// search along each coordinate within `±radius` of the current point,
/// shrinking the radius each sweep. Terminates after `max_sweeps` or when a
/// full sweep improves the objective by less than `tol`.
pub fn cyclic_coordinate_descent<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    radius: f64,
    tol: f64,
    max_sweeps: usize,
) -> Optimum {
    let mut x = x0.to_vec();
    let mut evals = 0usize;
    let mut best = f(&x);
    evals += 1;
    let mut r = radius;
    for _ in 0..max_sweeps {
        let before = best;
        for i in 0..x.len() {
            let xi = x[i];
            let (xmin, fmin) = golden_section(
                |v| {
                    x[i] = v;
                    let fv = f(&x);
                    x[i] = xi;
                    fv
                },
                xi - r,
                xi + r,
                tol.max(r * 1e-4),
            );
            // golden_section spends ~2 + log_φ(range/tol) evals.
            evals += 2 + ((r * 2.0 / tol.max(r * 1e-4)).ln() / 0.481).ceil() as usize;
            if fmin < best {
                best = fmin;
                x[i] = xmin;
            }
        }
        r *= 0.5;
        // Absolute-plus-relative improvement test: objectives here are
        // residual energies whose scale varies by orders of magnitude.
        if before - best < tol * tol + 1e-9 * before.abs() {
            break;
        }
    }
    Optimum {
        x,
        value: best,
        evals,
    }
}

/// Numeric-gradient descent with backtracking (Armijo) line search.
///
/// `step0` is the initial step length; the gradient is estimated by central
/// differences with spacing `h`. Stops when the gradient norm falls below
/// `tol` or after `max_iters`.
pub fn gradient_descent<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    step0: f64,
    h: f64,
    tol: f64,
    max_iters: usize,
) -> Optimum {
    let n = x0.len();
    let mut x = x0.to_vec();
    let mut fx = f(&x);
    let mut evals = 1usize;
    for _ in 0..max_iters {
        // Central-difference gradient.
        let mut g = vec![0.0; n];
        for i in 0..n {
            let xi = x[i];
            x[i] = xi + h;
            let fp = f(&x);
            x[i] = xi - h;
            let fm = f(&x);
            x[i] = xi;
            g[i] = (fp - fm) / (2.0 * h);
            evals += 2;
        }
        let gnorm = g.iter().map(|v| v * v).sum::<f64>().sqrt();
        if gnorm < tol {
            break;
        }
        // Backtracking line search along -g.
        let mut step = step0;
        let mut improved = false;
        for _ in 0..30 {
            let xt: Vec<f64> = x.iter().zip(&g).map(|(xi, gi)| xi - step * gi).collect();
            let ft = f(&xt);
            evals += 1;
            if ft < fx - 1e-4 * step * gnorm * gnorm {
                x = xt;
                fx = ft;
                improved = true;
                break;
            }
            step *= 0.5;
        }
        if !improved {
            break;
        }
    }
    Optimum {
        x,
        value: fx,
        evals,
    }
}

/// Runs `local` from `starts.len()` starting points and returns the best
/// optimum found. This is the paper's "randomly chosen initial points that
/// are likely to converge to the global minimum" strategy; the caller
/// supplies the (possibly random) starts so results stay reproducible.
pub fn multi_start<F, L>(mut local: L, starts: &[Vec<f64>]) -> Option<Optimum>
where
    F: FnMut(&[f64]) -> f64,
    L: FnMut(&[f64]) -> Optimum,
{
    let mut best: Option<Optimum> = None;
    let mut total_evals = 0usize;
    for s in starts {
        let opt = local(s);
        total_evals += opt.evals;
        match &best {
            Some(b) if b.value <= opt.value => {}
            _ => best = Some(opt),
        }
    }
    best.map(|mut b| {
        b.evals = total_evals;
        b
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_quadratic() {
        let (x, v) = golden_section(|x| (x - 2.3) * (x - 2.3) + 1.0, 0.0, 5.0, 1e-8);
        assert!((x - 2.3).abs() < 1e-6);
        assert!((v - 1.0).abs() < 1e-10);
    }

    #[test]
    fn golden_section_boundary_minimum() {
        // Monotone decreasing: minimum at the right edge.
        let (x, _) = golden_section(|x| -x, 0.0, 1.0, 1e-8);
        assert!(x > 1.0 - 1e-6);
    }

    #[test]
    fn coordinate_descent_quadratic_bowl() {
        let f = |x: &[f64]| (x[0] - 1.0).powi(2) + 3.0 * (x[1] + 2.0).powi(2) + 0.5;
        let opt = cyclic_coordinate_descent(f, &[0.0, 0.0], 4.0, 1e-9, 50);
        assert!((opt.x[0] - 1.0).abs() < 1e-4, "x0 {}", opt.x[0]);
        assert!((opt.x[1] + 2.0).abs() < 1e-4, "x1 {}", opt.x[1]);
        assert!((opt.value - 0.5).abs() < 1e-7);
    }

    #[test]
    fn coordinate_descent_correlated_quadratic() {
        // Rotated bowl — coordinates are coupled; CCD still converges.
        let f = |x: &[f64]| {
            let (u, v) = (x[0] + 0.5 * x[1], x[1] - 0.3 * x[0]);
            (u - 1.0).powi(2) + 2.0 * (v - 2.0).powi(2)
        };
        let opt = cyclic_coordinate_descent(f, &[0.0, 0.0], 5.0, 1e-10, 200);
        assert!(opt.value < 1e-5, "value {}", opt.value);
    }

    #[test]
    fn gradient_descent_quadratic() {
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2);
        let opt = gradient_descent(f, &[0.0, 0.0], 0.4, 1e-6, 1e-8, 500);
        assert!((opt.x[0] - 3.0).abs() < 1e-3);
        assert!((opt.x[1] + 1.0).abs() < 1e-3);
    }

    #[test]
    fn gradient_descent_rosenbrock_progress() {
        // Rosenbrock is hard for plain GD; we only require a large decrease.
        let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let f0 = f(&[-1.2, 1.0]);
        let opt = gradient_descent(f, &[-1.2, 1.0], 1e-3, 1e-7, 1e-10, 2000);
        assert!(opt.value < 0.05 * f0, "value {}", opt.value);
    }

    #[test]
    fn multi_start_escapes_local_minimum() {
        // Double well: minima at ±1 with f(-1) = 0 (global), f(1) = 0.5.
        let f = |x: &[f64]| {
            let w = (x[0] * x[0] - 1.0).powi(2);
            w + 0.25 * (x[0] + 1.0).powi(2) * 0.5 + if x[0] > 0.0 { 0.5 } else { 0.0 }
        };
        let starts = vec![vec![0.9], vec![-0.9]];
        let best = multi_start::<fn(&[f64]) -> f64, _>(
            |s| cyclic_coordinate_descent(f, s, 0.5, 1e-9, 60),
            &starts,
        )
        .unwrap();
        assert!(best.x[0] < 0.0, "stuck in local minimum at {}", best.x[0]);
    }

    #[test]
    fn multi_start_empty_returns_none() {
        let best = multi_start::<fn(&[f64]) -> f64, _>(
            |s| cyclic_coordinate_descent(|x: &[f64]| x[0] * x[0], s, 1.0, 1e-6, 10),
            &[],
        );
        assert!(best.is_none());
    }

    #[test]
    fn optimum_reports_evals() {
        let opt = cyclic_coordinate_descent(|x: &[f64]| x[0] * x[0], &[2.0], 3.0, 1e-8, 20);
        assert!(opt.evals > 0);
    }
}
