//! Debug-build numerical sanitizers for the all-`f64` DSP pipeline.
//!
//! The Choir decoder is a long chain of floating-point stages (dechirp →
//! FFT → least-squares → SIC); a NaN injected anywhere propagates silently
//! and surfaces as a mysteriously empty peak list three layers later. This
//! module provides cheap invariant scans that run **only in debug builds**
//! (`cfg!(debug_assertions)`): release binaries pay nothing — the constant
//! condition folds every body away.
//!
//! Checks provided:
//!
//! * [`assert_finite`] / [`assert_finite_f64`] — no NaN/Inf anywhere in a
//!   buffer (the panic message also reports the subnormal count, the usual
//!   smoking gun for underflow collapse);
//! * [`assert_parseval`] — energy is conserved across an FFT boundary
//!   (`‖X‖² = N·‖x‖²`), catching scaling and twiddle-table bugs;
//! * [`ResidualMonitor`] — successive-interference-cancellation residual
//!   power must not grow from phase to phase, catching divergent
//!   subtraction (a wrong channel estimate *adds* energy instead of
//!   removing it).
//!
//! All panics go through `assert!` with a message naming the call site
//! label, so a tripped sanitizer points at the stage that produced the bad
//! buffer, not the stage that consumed it.

use crate::complex::C64;

/// True when the sanitizers are active (debug builds).
///
/// Useful for tests that must behave differently per profile.
pub const fn enabled() -> bool {
    cfg!(debug_assertions)
}

/// Relative tolerance for the Parseval energy check. Radix-2 and Bluestein
/// round-off stays orders of magnitude below this for every size the
/// pipeline uses (≤ 10·2^12).
pub const PARSEVAL_REL_TOL: f64 = 1e-9;

/// Counts of pathological floating-point values in a buffer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Samples with a NaN real or imaginary part.
    pub nan: usize,
    /// Samples with an infinite real or imaginary part.
    pub inf: usize,
    /// Samples with a subnormal (denormal) real or imaginary part —
    /// not an error by itself, but a strong hint of underflow collapse
    /// when it dominates a buffer.
    pub subnormal: usize,
}

impl ScanReport {
    /// True when the buffer contains no NaN and no Inf.
    pub fn is_finite(&self) -> bool {
        self.nan == 0 && self.inf == 0
    }
}

fn classify(v: f64, report: &mut ScanReport) {
    if v.is_nan() {
        report.nan += 1;
    } else if v.is_infinite() {
        report.inf += 1;
    } else if v.is_subnormal() {
        report.subnormal += 1;
    }
}

/// Scans a complex buffer for NaN / Inf / subnormal components.
///
/// Always available (tests use it directly); the `assert_*` wrappers gate
/// on `debug_assertions`.
pub fn scan(x: &[C64]) -> ScanReport {
    let mut report = ScanReport::default();
    for z in x {
        classify(z.re, &mut report);
        classify(z.im, &mut report);
    }
    report
}

/// Scans a real buffer for NaN / Inf / subnormal values.
pub fn scan_f64(x: &[f64]) -> ScanReport {
    let mut report = ScanReport::default();
    for &v in x {
        classify(v, &mut report);
    }
    report
}

/// Debug-only: panics if `x` contains any NaN or Inf component.
///
/// `label` names the producing stage (e.g. `"estimator::dechirp"`) so the
/// failure points at the source of the corruption. Compiles to nothing in
/// release builds.
#[inline]
pub fn assert_finite(label: &str, x: &[C64]) {
    if cfg!(debug_assertions) {
        let r = scan(x);
        assert!(
            r.is_finite(),
            "checks::assert_finite({label}): {} NaN, {} Inf, {} subnormal in {} samples",
            r.nan,
            r.inf,
            r.subnormal,
            x.len(),
        );
    }
}

/// Debug-only: panics if `x` contains any NaN or Inf value.
#[inline]
pub fn assert_finite_f64(label: &str, x: &[f64]) {
    if cfg!(debug_assertions) {
        let r = scan_f64(x);
        assert!(
            r.is_finite(),
            "checks::assert_finite_f64({label}): {} NaN, {} Inf, {} subnormal in {} samples",
            r.nan,
            r.inf,
            r.subnormal,
            x.len(),
        );
    }
}

/// Debug-only: verifies Parseval's theorem across an FFT boundary —
/// `Σ|X[k]|² = N·Σ|x[t]|²` for an unnormalised forward transform of length
/// `N = freq.len()`.
///
/// `time_energy` is the input energy captured *before* the in-place
/// transform ran. Tolerance is [`PARSEVAL_REL_TOL`] relative to the larger
/// side, with an absolute floor so all-zero buffers pass.
#[inline]
pub fn assert_parseval(label: &str, time_energy: f64, freq: &[C64]) {
    if cfg!(debug_assertions) {
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr()).sum();
        assert_parseval_energies(label, time_energy, freq_energy, freq.len());
    }
}

/// Debug-only: the energy-only form of [`assert_parseval`], for call sites
/// that have already consumed (or overwritten, for in-place transforms)
/// one of the two buffers.
#[inline]
pub fn assert_parseval_energies(label: &str, time_energy: f64, freq_energy: f64, n: usize) {
    if cfg!(debug_assertions) {
        let expect = n as f64 * time_energy;
        let tol = PARSEVAL_REL_TOL * expect.max(freq_energy) + 1e-300;
        assert!(
            (freq_energy - expect).abs() <= tol,
            "checks::assert_parseval({label}): freq energy {freq_energy:e} vs N·time energy \
             {expect:e} (rel err {:e})",
            (freq_energy - expect).abs() / expect.max(1e-300),
        );
    }
}

/// Debug-only watchdog for successive interference cancellation: residual
/// power observed at each phase must be finite, non-negative, and must not
/// *grow* from one phase to the next.
///
/// A correct SIC subtraction is a least-squares projection, so residual
/// energy is non-increasing up to fitting slop; [`Self::SLACK`] tolerates
/// that slop (truncated cohorts, step re-fits) while still catching the
/// failure mode that matters — a bad channel estimate whose "cancellation"
/// pumps energy *into* the residual. Zero-sized in release builds' hot
/// path: `observe` folds away.
#[derive(Clone, Debug, Default)]
pub struct ResidualMonitor {
    last: Option<f64>,
    phase: usize,
}

impl ResidualMonitor {
    /// Multiplicative headroom allowed on top of the previous phase's
    /// residual before the monitor fires.
    pub const SLACK: f64 = 0.05;

    /// New monitor with no phases observed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the residual power at the start of a SIC phase
    /// (debug builds only).
    #[inline]
    pub fn observe(&mut self, label: &str, power: f64) {
        if cfg!(debug_assertions) {
            assert!(
                power.is_finite() && power >= 0.0,
                "checks::ResidualMonitor({label}): phase {} residual power is {power}",
                self.phase,
            );
            if let Some(prev) = self.last {
                assert!(
                    power <= prev * (1.0 + Self::SLACK) + 1e-300,
                    "checks::ResidualMonitor({label}): residual power rose {prev:e} → \
                     {power:e} between phases {} and {} — cancellation is adding energy",
                    self.phase - 1,
                    self.phase,
                );
            }
            self.last = Some(power);
            self.phase += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn scan_counts_each_class() {
        let x = [
            c64(1.0, 2.0),
            c64(f64::NAN, 0.0),
            c64(f64::INFINITY, f64::NAN),
            c64(1e-320, 0.0),
        ];
        let r = scan(&x);
        assert_eq!(r.nan, 2);
        assert_eq!(r.inf, 1);
        assert_eq!(r.subnormal, 1);
        assert!(!r.is_finite());
    }

    #[test]
    fn scan_clean_buffer_is_finite() {
        let x: Vec<C64> = (0..64).map(|i| c64(i as f64, -0.5 * i as f64)).collect();
        assert_eq!(scan(&x), ScanReport::default());
        assert_finite("clean", &x);
    }

    #[test]
    fn zeros_are_not_subnormal() {
        let x = vec![C64::ZERO; 32];
        assert_eq!(scan(&x), ScanReport::default());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "assert_finite(injected)")]
    fn nan_injection_is_caught_in_debug() {
        let mut x = vec![C64::ONE; 16];
        x[7] = c64(f64::NAN, 0.0);
        assert_finite("injected", &x);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "assert_finite_f64(injected)")]
    fn inf_injection_is_caught_in_debug_f64() {
        let mut x = vec![0.25; 16];
        x[3] = f64::NEG_INFINITY;
        assert_finite_f64("injected", &x);
    }

    #[test]
    fn parseval_accepts_true_transform_pair() {
        // Manual 2-point DFT of [1, j]: X = [1+j, 1-j].
        let time_energy = 2.0;
        let freq = [c64(1.0, 1.0), c64(1.0, -1.0)];
        assert_parseval("manual-dft", time_energy, &freq);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "assert_parseval(bad-scale)")]
    fn parseval_rejects_wrong_scaling() {
        // Energy off by 2× — the classic missing-normalisation bug.
        let freq = [c64(2.0, 2.0), c64(2.0, -2.0)];
        assert_parseval("bad-scale", 2.0, &freq);
    }

    #[test]
    fn residual_monitor_accepts_decreasing_power() {
        let mut m = ResidualMonitor::new();
        for p in [100.0, 12.5, 12.5, 0.01, 0.0] {
            m.observe("sic", p);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "cancellation is adding energy")]
    fn residual_monitor_rejects_growth() {
        let mut m = ResidualMonitor::new();
        m.observe("sic", 10.0);
        m.observe("sic", 11.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "residual power is NaN")]
    fn residual_monitor_rejects_nan() {
        let mut m = ResidualMonitor::new();
        m.observe("sic", f64::NAN);
    }
}
