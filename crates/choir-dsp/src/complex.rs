//! Double-precision complex numbers.
//!
//! The approved dependency set contains no complex-number crate, so Choir
//! carries its own minimal, well-tested implementation. Only the operations
//! the DSP pipeline needs are provided; the type is `Copy` and all operators
//! are implemented for value and reference operands alike.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + j·im` backed by two `f64`s.
///
/// `#[repr(C)]` pins the layout to `re` then `im`, so a `[C64]` is
/// layout-compatible with interleaved `f64` IQ pairs — the SIMD
/// backends (`crate::backend`) rely on this for their lane loads.
#[repr(C)]
#[derive(Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor: `c64(re, im)`.
#[inline]
pub const fn c64(re: f64, im: f64) -> C64 {
    C64 { re, im }
}

impl C64 {
    /// The additive identity, `0 + 0j`.
    pub const ZERO: C64 = c64(0.0, 0.0);
    /// The multiplicative identity, `1 + 0j`.
    pub const ONE: C64 = c64(1.0, 0.0);
    /// The imaginary unit, `0 + 1j`.
    pub const I: C64 = c64(0.0, 1.0);

    /// Builds a complex number from its real part (imaginary part zero).
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// Builds a complex number from polar coordinates `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        c64(r * theta.cos(), r * theta.sin())
    }

    /// `e^{jθ}` — a unit phasor. The workhorse of every mixer in this
    /// code base.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        c64(theta.cos(), theta.sin())
    }

    /// Complex conjugate `re - j·im`.
    #[inline]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²` (no square root — prefer this in
    /// power computations).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`. Returns NaNs for zero input.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        c64(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        c64(self.re * s, self.im * s)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// True when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Fused multiply-add `self * b + c`, used in inner loops.
    #[inline]
    pub fn mul_add(self, b: C64, c: C64) -> Self {
        c64(
            self.re.mul_add(b.re, -(self.im * b.im)) + c.re,
            self.re.mul_add(b.im, self.im * b.re) + c.im,
        )
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.6}{:+.6}j", self.re, self.im)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+}{:+}j", self.re, self.im)
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::from_re(re)
    }
}

macro_rules! binop {
    ($trait:ident, $method:ident, |$a:ident, $b:ident| $body:expr) => {
        impl $trait for C64 {
            type Output = C64;
            #[inline]
            fn $method(self, rhs: C64) -> C64 {
                let ($a, $b) = (self, rhs);
                $body
            }
        }
        impl $trait<&C64> for C64 {
            type Output = C64;
            #[inline]
            fn $method(self, rhs: &C64) -> C64 {
                $trait::$method(self, *rhs)
            }
        }
        impl $trait<C64> for &C64 {
            type Output = C64;
            #[inline]
            fn $method(self, rhs: C64) -> C64 {
                $trait::$method(*self, rhs)
            }
        }
        impl $trait<&C64> for &C64 {
            type Output = C64;
            #[inline]
            fn $method(self, rhs: &C64) -> C64 {
                $trait::$method(*self, *rhs)
            }
        }
    };
}

binop!(Add, add, |a, b| c64(a.re + b.re, a.im + b.im));
binop!(Sub, sub, |a, b| c64(a.re - b.re, a.im - b.im));
binop!(Mul, mul, |a, b| c64(
    a.re * b.re - a.im * b.im,
    a.re * b.im + a.im * b.re
));
binop!(Div, div, |a, b| {
    let d = b.norm_sqr();
    c64(
        (a.re * b.re + a.im * b.im) / d,
        (a.im * b.re - a.re * b.im) / d,
    )
});

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        c64(-self.re, -self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, s: f64) -> C64 {
        self.scale(s)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, z: C64) -> C64 {
        z.scale(self)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, s: f64) -> C64 {
        c64(self.re / s, self.im / s)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}
impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}
impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}
impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}
impl MulAssign<f64> for C64 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        *self = self.scale(s);
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |acc, z| acc + z)
    }
}

impl<'a> Sum<&'a C64> for C64 {
    fn sum<I: Iterator<Item = &'a C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |acc, z| acc + *z)
    }
}

/// Total signal energy `Σ |x[n]|²`.
pub fn energy(x: &[C64]) -> f64 {
    x.iter().map(|z| z.norm_sqr()).sum()
}

/// Mean signal power `energy / len` (zero for an empty slice).
pub fn power(x: &[C64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        energy(x) / x.len() as f64
    }
}

/// Element-wise product `a[n]·b[n]` into a new vector.
///
/// Panics when lengths differ — mixing two signals of different lengths is
/// always a bug upstream.
pub fn hadamard(a: &[C64], b: &[C64]) -> Vec<C64> {
    assert_eq!(a.len(), b.len(), "hadamard: length mismatch");
    let mut out = vec![C64::ZERO; a.len()];
    crate::backend::cmul_into(a, b, &mut out);
    out
}

/// Inner product `Σ a[n]·conj(b[n])` (correlation of `a` against `b`).
///
/// Dispatches as `conj_dot(b, a)`: complex multiplication is
/// bit-commutative (each component is the same two products, summed in
/// either order, and IEEE addition of numbers is commutative), so
/// `a·conj(b) ≡ conj(b)·a` exactly.
pub fn inner(a: &[C64], b: &[C64]) -> C64 {
    assert_eq!(a.len(), b.len(), "inner: length mismatch");
    crate::backend::conj_dot(b, a)
}

// Tests assert on exactly-representable values (0.0, bin centres).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: C64, b: C64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn construction_and_constants() {
        assert_eq!(C64::ZERO + C64::ONE, C64::ONE);
        assert_eq!(C64::I * C64::I, -C64::ONE);
        assert_eq!(C64::from_re(2.5), c64(2.5, 0.0));
        assert_eq!(C64::from(3.0), c64(3.0, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let t = k as f64 * 0.41;
            assert!((C64::cis(t).abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn arithmetic() {
        let a = c64(1.0, 2.0);
        let b = c64(3.0, -4.0);
        assert_eq!(a + b, c64(4.0, -2.0));
        assert_eq!(a - b, c64(-2.0, 6.0));
        assert_eq!(a * b, c64(11.0, 2.0));
        assert!(close(a / b * b, a));
        assert!(close(a * a.inv(), C64::ONE));
    }

    #[test]
    // This test exists to exercise the by-reference operator impls.
    #[allow(clippy::op_ref)]
    fn reference_operands() {
        let a = c64(1.0, 1.0);
        let b = c64(2.0, 3.0);
        assert_eq!(&a + &b, a + b);
        assert_eq!(a * &b, a * b);
        assert_eq!(&a - b, a - b);
        assert_eq!(&a / &b, a / b);
    }

    #[test]
    fn conj_and_norms() {
        let z = c64(3.0, 4.0);
        assert_eq!(z.conj(), c64(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!((z * z.conj()).im.abs() < EPS);
    }

    #[test]
    fn exp_matches_euler() {
        let z = c64(0.0, std::f64::consts::PI);
        assert!(close(z.exp(), -C64::ONE));
        let w = c64(1.0, 0.5);
        let e = w.exp();
        assert!((e.abs() - 1.0f64.exp()).abs() < 1e-9);
        assert!((e.arg() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[c64(4.0, 0.0), c64(-1.0, 0.0), c64(3.0, -4.0)] {
            let r = z.sqrt();
            assert!(close(r * r, z));
        }
    }

    #[test]
    fn assign_ops() {
        let mut z = c64(1.0, 1.0);
        z += c64(1.0, 0.0);
        assert_eq!(z, c64(2.0, 1.0));
        z -= c64(0.0, 1.0);
        assert_eq!(z, c64(2.0, 0.0));
        z *= c64(0.0, 1.0);
        assert_eq!(z, c64(0.0, 2.0));
        z /= c64(0.0, 1.0);
        assert_eq!(z, c64(2.0, 0.0));
        z *= 0.5;
        assert_eq!(z, c64(1.0, 0.0));
    }

    #[test]
    fn sum_over_iterators() {
        let v = vec![c64(1.0, 0.0), c64(0.0, 1.0), c64(2.0, 2.0)];
        let s: C64 = v.iter().sum();
        assert_eq!(s, c64(3.0, 3.0));
        let s2: C64 = v.into_iter().sum();
        assert_eq!(s2, c64(3.0, 3.0));
    }

    #[test]
    fn energy_power_helpers() {
        let v = vec![c64(1.0, 0.0), c64(0.0, 2.0)];
        assert_eq!(energy(&v), 5.0);
        assert_eq!(power(&v), 2.5);
        assert_eq!(power(&[]), 0.0);
    }

    #[test]
    fn inner_product_is_hermitian() {
        let a = vec![c64(1.0, 2.0), c64(-1.0, 0.5)];
        let b = vec![c64(0.0, 1.0), c64(2.0, -2.0)];
        let ab = inner(&a, &b);
        let ba = inner(&b, &a);
        assert!(close(ab, ba.conj()));
        // Inner product with itself equals energy.
        assert!((inner(&a, &a).re - energy(&a)).abs() < EPS);
        assert!(inner(&a, &a).im.abs() < EPS);
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = c64(1.5, -0.5);
        let b = c64(-2.0, 3.0);
        let c = c64(0.25, 0.75);
        assert!(close(a.mul_add(b, c), a * b + c));
    }

    #[test]
    #[should_panic(expected = "hadamard: length mismatch")]
    fn hadamard_length_mismatch_panics() {
        let _ = hadamard(&[C64::ONE], &[C64::ONE, C64::ZERO]);
    }
}
