//! Property-based tests for the DSP substrate.

use choir_dsp::complex::{c64, energy, C64};
use choir_dsp::fft::{dft_naive, fft, ifft, FftPlan};
use choir_dsp::linalg::{least_squares, residual_energy};
use choir_dsp::optim::{cyclic_coordinate_descent, golden_section};
use choir_dsp::peaks::{find_peaks, PeakConfig};
use choir_dsp::stats;
use proptest::prelude::*;

fn arb_signal(max_len: usize) -> impl Strategy<Value = Vec<C64>> {
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..max_len)
        .prop_map(|v| v.into_iter().map(|(re, im)| c64(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_roundtrip_any_size(x in arb_signal(300)) {
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn fft_parseval_any_size(x in arb_signal(300)) {
        let y = fft(&x);
        let ex = energy(&x);
        let ey = energy(&y) / x.len() as f64;
        prop_assert!((ex - ey).abs() <= 1e-6 * ex.max(1.0));
    }

    #[test]
    fn fft_matches_naive_small(x in arb_signal(48)) {
        let a = fft(&x);
        let b = dft_naive(&x);
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn fft_shift_theorem(x in arb_signal(100), shift in 0usize..20) {
        // Circularly shifting the input rotates each FFT bin by e^{-j2πk·s/N}.
        let n = x.len();
        let s = shift % n;
        let shifted: Vec<C64> = (0..n).map(|i| x[(i + n - s) % n]).collect();
        let fx = fft(&x);
        let fs = fft(&shifted);
        for (k, (a, b)) in fx.iter().zip(&fs).enumerate() {
            let rot = C64::cis(-2.0 * std::f64::consts::PI * (k * s) as f64 / n as f64);
            prop_assert!((a * rot - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn peak_finds_random_fractional_tone(fbin in 2.0f64..126.0, _amp_unused in 0.5f64..2.0) {
        let n = 128usize;
        let x: Vec<C64> = (0..n)
            .map(|t| C64::cis(2.0 * std::f64::consts::PI * fbin * t as f64 / n as f64))
            .collect();
        let spec = FftPlan::new(10 * n).forward_padded(&x);
        let peaks = find_peaks(&spec, &PeakConfig::default());
        prop_assert!(!peaks.is_empty());
        prop_assert!((peaks[0].pos - fbin).abs() < 0.06, "pos {} vs {}", peaks[0].pos, fbin);
    }

    #[test]
    fn least_squares_recovers_two_tone_mixture(
        f1 in 5.0f64..60.0,
        df in 2.0f64..60.0,
        re1 in -1.0f64..1.0, im1 in -1.0f64..1.0,
        re2 in -1.0f64..1.0, im2 in -1.0f64..1.0,
    ) {
        let n = 128usize;
        let f2 = f1 + df;
        let mk = |f: f64| -> Vec<C64> {
            (0..n).map(|t| C64::cis(2.0 * std::f64::consts::PI * f * t as f64 / n as f64)).collect()
        };
        let (b1, b2) = (mk(f1), mk(f2));
        let (c1, c2) = (c64(re1, im1), c64(re2, im2));
        let y: Vec<C64> = (0..n).map(|t| b1[t] * c1 + b2[t] * c2).collect();
        let coeffs = least_squares(&[b1.clone(), b2.clone()], &y).unwrap();
        prop_assert!((coeffs[0] - c1).abs() < 1e-6);
        prop_assert!((coeffs[1] - c2).abs() < 1e-6);
        prop_assert!(residual_energy(&[b1, b2], &coeffs, &y) < 1e-12);
    }

    #[test]
    fn golden_section_finds_shifted_quadratic(c in -5.0f64..5.0) {
        let (x, _) = golden_section(|x| (x - c).powi(2), -10.0, 10.0, 1e-9);
        prop_assert!((x - c).abs() < 1e-6);
    }

    #[test]
    fn coordinate_descent_never_increases(x0 in prop::collection::vec(-3.0f64..3.0, 1..4)) {
        let f = |x: &[f64]| x.iter().map(|v| (v - 0.7).powi(2)).sum::<f64>() + 1.0;
        let start = f(&x0);
        let opt = cyclic_coordinate_descent(f, &x0, 2.0, 1e-8, 30);
        prop_assert!(opt.value <= start + 1e-12);
    }

    #[test]
    fn percentile_within_minmax(v in prop::collection::vec(-100.0f64..100.0, 1..50), p in 0.0f64..100.0) {
        let q = stats::percentile(&v, p);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(q >= lo - 1e-12 && q <= hi + 1e-12);
    }

    #[test]
    fn cdf_monotone(v in prop::collection::vec(-10.0f64..10.0, 1..60)) {
        let cdf = stats::empirical_cdf(&v);
        for w in cdf.windows(2) {
            prop_assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn complex_field_axioms(
        are in -5.0f64..5.0, aim in -5.0f64..5.0,
        bre in -5.0f64..5.0, bim in -5.0f64..5.0,
        cre in -5.0f64..5.0, cim in -5.0f64..5.0,
    ) {
        let (a, b, c) = (c64(are, aim), c64(bre, bim), c64(cre, cim));
        // Distributivity and commutativity within floating tolerance.
        prop_assert!(((a + b) * c - (a * c + b * c)).abs() < 1e-9);
        prop_assert!((a * b - b * a).abs() < 1e-12);
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-12);
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9);
    }
}
