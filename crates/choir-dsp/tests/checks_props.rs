//! Property-based tests for the debug-build numerical sanitizers — the
//! sanitizer sanitized. Two contracts matter:
//!
//! 1. the checks never fire on healthy pipelines (every FFT in the random
//!    sweep satisfies Parseval within [`checks::PARSEVAL_REL_TOL`]);
//! 2. the checks *do* fire on corrupt data in debug builds (an injected
//!    NaN anywhere in a buffer trips [`checks::assert_finite`]).

use choir_dsp::checks;
use choir_dsp::complex::{c64, energy, C64};
use choir_dsp::fft::{fft, ifft, FftPlan};
use proptest::prelude::*;

fn arb_signal(max_len: usize) -> impl Strategy<Value = Vec<C64>> {
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..max_len)
        .prop_map(|v| v.into_iter().map(|(re, im)| c64(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parseval_holds_within_1e9_for_random_signals(x in arb_signal(400)) {
        // The sanitizer's own tolerance (1e-9 relative) must hold across
        // both radix-2 and Bluestein sizes — this exercises the same
        // assert_parseval that FftPlan::forward runs in debug builds, but
        // unconditionally, so release test runs cover it too.
        let time_energy = energy(&x);
        let y = fft(&x);
        checks::assert_parseval("prop:forward", time_energy, &y);
        let freq_energy = energy(&y);
        prop_assert!(
            (freq_energy - x.len() as f64 * time_energy).abs()
                <= checks::PARSEVAL_REL_TOL * freq_energy.max(1.0)
        );
    }

    #[test]
    fn roundtrip_keeps_buffers_clean(x in arb_signal(300)) {
        // No stage of forward+inverse may mint a NaN/Inf from finite input.
        let y = ifft(&fft(&x));
        prop_assert!(checks::scan(&y).is_finite());
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn scan_finds_an_injected_nan_anywhere(
        x in arb_signal(200),
        pos in 0.0f64..1.0,
    ) {
        let mut x = x;
        let idx = ((x.len() - 1) as f64 * pos) as usize;
        x[idx] = c64(f64::NAN, 0.0);
        let r = checks::scan(&x);
        prop_assert!(!r.is_finite());
        prop_assert!(r.nan >= 1);
    }

    #[test]
    fn assert_finite_catches_injected_nan_in_debug(
        x in arb_signal(200),
        pos in 0.0f64..1.0,
    ) {
        // In debug builds the sanitizer must panic; in release it must be
        // a no-op (that is the zero-overhead contract).
        let mut x = x;
        let idx = ((x.len() - 1) as f64 * pos) as usize;
        x[idx] = c64(0.0, f64::INFINITY);
        let fired = std::panic::catch_unwind(|| checks::assert_finite("prop:injected", &x)).is_err();
        prop_assert_eq!(fired, checks::enabled());
    }

    #[test]
    fn forward_padded_spectrum_is_finite(x in arb_signal(128), pad in 1usize..12) {
        // The padded-FFT path (Bluestein for non-power-of-two) feeds the
        // coarse stage of the whole pipeline; its output must stay clean.
        let plan = FftPlan::new(x.len() * pad);
        let y = plan.forward_padded(&x);
        prop_assert!(checks::scan(&y).is_finite());
    }
}

#[test]
fn parseval_check_rejects_a_corrupted_spectrum() {
    // Flip one bin's magnitude: in debug builds the boundary check fires.
    if !checks::enabled() {
        return;
    }
    let x: Vec<C64> = (0..64).map(|i| c64((i as f64 * 0.3).sin(), 0.0)).collect();
    let time_energy = energy(&x);
    let mut y = fft(&x);
    y[5] = y[5].scale(8.0);
    let fired =
        std::panic::catch_unwind(|| checks::assert_parseval("prop:corrupt", time_energy, &y))
            .is_err();
    assert!(fired, "corrupted spectrum passed the Parseval check");
}
