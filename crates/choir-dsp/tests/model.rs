//! Model-checked suite for the FFT plan cache.
//!
//! Drives the real `PlanCache::get` lookup → plan-outside-the-lock →
//! double-checked-insert path under the `choir-sync` schedule explorer.
//! Compiled only under `RUSTFLAGS="--cfg choir_model"`
//! (`cargo xtask ci model-check`).
#![cfg(choir_model)]

use choir_dsp::fft::PlanCache;
use choir_sync::model::{explore, Config};
use choir_sync::thread;
use std::sync::Arc;

/// Two threads racing the first `get(n)` for a size never deadlock and
/// always end up sharing one plan: whichever interleaving of the lookup
/// and insert critical sections the explorer picks, both callers return
/// the same `Arc` (the first insert wins, the loser's plan is dropped)
/// and the cache holds exactly one entry.
#[test]
fn racing_gets_share_one_plan_and_never_deadlock() {
    let report = explore(Config::new(300), || {
        let cache = PlanCache::new();
        let (a, b) = thread::scope(|s| {
            let ta = s.spawn(|| cache.get(8));
            let tb = s.spawn(|| cache.get(8));
            (ta.join().ok(), tb.join().ok())
        });
        assert!(a.is_some() && b.is_some(), "a racing get(8) call panicked");
        if let (Some(a), Some(b)) = (a, b) {
            assert!(
                Arc::ptr_eq(&a, &b),
                "racing get(8) calls returned distinct plans"
            );
            assert_eq!(a.len(), 8);
        }
        assert_eq!(
            cache.len(),
            1,
            "a lost insert race must not leave a duplicate entry"
        );
    });
    assert!(
        report.distinct >= 3,
        "expected lookup/insert interleaving coverage, got {report:?}"
    );
}

/// A `get` for a cached size racing a first-time `get` for another size
/// stays consistent: the warm size keeps returning the original plan and
/// both sizes end up cached once each.
#[test]
fn warm_hit_racing_cold_insert_stays_consistent() {
    let report = explore(Config::new(300), || {
        let cache = PlanCache::new();
        let warm = cache.get(16);
        let (hit, cold) = thread::scope(|s| {
            let th = s.spawn(|| cache.get(16));
            let tc = s.spawn(|| cache.get(8));
            (th.join().ok(), tc.join().ok())
        });
        assert!(
            hit.is_some() && cold.is_some(),
            "a racing get call panicked"
        );
        if let (Some(hit), Some(cold)) = (hit, cold) {
            assert!(
                Arc::ptr_eq(&warm, &hit),
                "a warm lookup must return the originally cached plan"
            );
            assert_eq!(cold.len(), 8);
        }
        assert_eq!(cache.len(), 2);
    });
    assert!(
        report.distinct >= 3,
        "expected hit-vs-insert interleaving coverage, got {report:?}"
    );
}
