//! Property suite: every runtime-selectable DSP backend against the
//! scalar oracle, under the 0-ULP policy.
//!
//! The dispatch contract (see `choir_dsp::backend`) is that every
//! backend is *bit-identical* to `backend::scalar` — not merely close.
//! These tests force each backend reported by [`backend::available`] in
//! turn and compare kernel outputs via `f64::to_bits`, on adversarial
//! inputs: denormals, signed zeros, huge/tiny dynamic range (overflowing
//! to ±∞ and generating NaNs), and lengths that are not multiples of any
//! SIMD lane width.
//!
//! NaN results compare as "both NaN" rather than bit-equal: IEEE-754
//! leaves NaN sign/payload propagation unspecified and compilers exploit
//! that, so NaN bits are explicitly outside the 0-ULP budget (see the
//! backend module docs).

use choir_dsp::backend::{self, BackendKind};
use choir_dsp::complex::{c64, C64};
use proptest::prelude::*;
use std::f64::consts::PI;

/// Serialises the tests in this binary: `backend::force` steers a
/// process-global dispatch atomic.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Restores env-driven auto selection when a test body exits (including
/// by panic, so a failing case does not leak its forced backend into
/// later tests).
struct RestoreBackend;

impl Drop for RestoreBackend {
    fn drop(&mut self) {
        backend::reset();
    }
}

/// Maps a (class, seed) pair to an adversarial `f64`: normals, huge and
/// tiny magnitudes, denormals, and signed zeros.
fn wild(class: u8, v: f64) -> f64 {
    match class {
        0 => v,
        1 => v * 1e300,
        2 => v * 1e-300,
        3 => v * f64::MIN_POSITIVE / 4.0,
        4 => {
            if v < 0.0 {
                -0.0
            } else {
                0.0
            }
        }
        _ => v * 1e9,
    }
}

type WildPair = (u8, f64);

fn wild_c64((re, im): (WildPair, WildPair)) -> C64 {
    c64(wild(re.0, re.1), wild(im.0, im.1))
}

/// Complex vectors of adversarial values with lengths 1..67 — never a
/// multiple of the 2-complex AVX2 (or 1-complex NEON) step for long
/// stretches, so every tail path is exercised.
fn arb_wild_signal(max_len: usize) -> impl Strategy<Value = Vec<C64>> {
    prop::collection::vec(((0u8..6, -1.0f64..1.0), (0u8..6, -1.0f64..1.0)), 1..max_len)
        .prop_map(|v| v.into_iter().map(wild_c64).collect())
}

/// Real vectors of adversarial values (sinc-kernel taps for `dot_rev`).
fn arb_wild_taps(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((0u8..6, -1.0f64..1.0), 1..max_len)
        .prop_map(|v| v.into_iter().map(|(c, x)| wild(c, x)).collect())
}

/// The backend contract: bit-equal, except NaN matches any NaN (sign
/// and payload of NaNs are unspecified by IEEE-754 — see module docs).
fn f64_matches(g: f64, w: f64) -> bool {
    g.to_bits() == w.to_bits() || (g.is_nan() && w.is_nan())
}

fn assert_bits_eq(kind: BackendKind, kernel: &str, got: &[C64], want: &[C64]) {
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            f64_matches(g.re, w.re) && f64_matches(g.im, w.im),
            "{kernel} diverged from the scalar oracle on backend {} at index {i}: \
             got ({:?}, {:?}) [{:#018x}, {:#018x}], \
             want ({:?}, {:?}) [{:#018x}, {:#018x}]",
            kind.name(),
            g.re,
            g.im,
            g.re.to_bits(),
            g.im.to_bits(),
            w.re,
            w.im,
            w.re.to_bits(),
            w.im.to_bits(),
        );
    }
}

fn assert_scalar_bits_eq(kind: BackendKind, kernel: &str, got: C64, want: C64) {
    assert_bits_eq(kind, kernel, &[got], &[want]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conj_dot_matches_oracle_bit_exactly(
        a in arb_wild_signal(67),
        b in arb_wild_signal(67),
    ) {
        let _s = serial();
        let _r = RestoreBackend;
        let n = a.len().min(b.len());
        let want = backend::scalar::conj_dot(&a[..n], &b[..n]);
        for kind in backend::available() {
            backend::force(kind);
            let got = backend::conj_dot(&a[..n], &b[..n]);
            assert_scalar_bits_eq(kind, "conj_dot", got, want);
        }
    }

    #[test]
    fn cmul_and_conj_match_oracle_bit_exactly(
        a in arb_wild_signal(67),
        b in arb_wild_signal(67),
    ) {
        let _s = serial();
        let _r = RestoreBackend;
        let n = a.len().min(b.len());
        let mut want_mul = vec![C64::ZERO; n];
        backend::scalar::cmul_into(&a[..n], &b[..n], &mut want_mul);
        let mut want_conj = vec![C64::ZERO; n];
        backend::scalar::conj_into(&a[..n], &mut want_conj);
        for kind in backend::available() {
            backend::force(kind);
            let mut got = vec![C64::ZERO; n];
            backend::cmul_into(&a[..n], &b[..n], &mut got);
            assert_bits_eq(kind, "cmul_into", &got, &want_mul);
            let mut got = vec![C64::ZERO; n];
            backend::conj_into(&a[..n], &mut got);
            assert_bits_eq(kind, "conj_into", &got, &want_conj);
        }
    }

    #[test]
    fn axpy_matches_oracle_bit_exactly(
        acc in arb_wild_signal(67),
        xs in arb_wild_signal(67),
        amp in ((0u8..6, -1.0f64..1.0), (0u8..6, -1.0f64..1.0)),
        subtract in 0u8..2,
    ) {
        let _s = serial();
        let _r = RestoreBackend;
        let n = acc.len().min(xs.len());
        let amp = wild_c64(amp);
        let subtract = subtract == 1;
        let mut want = acc[..n].to_vec();
        backend::scalar::axpy(&mut want, &xs[..n], amp, subtract);
        for kind in backend::available() {
            backend::force(kind);
            let mut got = acc[..n].to_vec();
            backend::axpy(&mut got, &xs[..n], amp, subtract);
            assert_bits_eq(kind, "axpy", &got, &want);
        }
    }

    #[test]
    fn dot_rev_matches_oracle_bit_exactly(
        xs in arb_wild_signal(67),
        taps in arb_wild_taps(67),
    ) {
        let _s = serial();
        let _r = RestoreBackend;
        let k = taps.len().min(xs.len());
        let want = backend::scalar::dot_rev(&xs[..k], &taps[..k]);
        for kind in backend::available() {
            backend::force(kind);
            let got = backend::dot_rev(&xs[..k], &taps[..k]);
            assert_scalar_bits_eq(kind, "dot_rev", got, want);
        }
    }

    #[test]
    fn fft_butterflies_match_oracle_bit_exactly(
        log2n in 1u32..8,
        seed in arb_wild_signal(129),
        forward in 0u8..2,
    ) {
        let _s = serial();
        let _r = RestoreBackend;
        let n = 1usize << log2n;
        // Cycle the drawn values out to the power-of-two length the
        // butterfly passes require.
        let x: Vec<C64> = (0..n).map(|i| seed[i % seed.len()]).collect();
        let w = -2.0 * PI / n as f64;
        let twiddles: Vec<C64> =
            (0..n / 2).map(|k| C64::cis(w * k as f64)).collect();
        let forward = forward == 1;
        let mut want = x.clone();
        backend::scalar::butterflies(&mut want, &twiddles, forward);
        for kind in backend::available() {
            backend::force(kind);
            let mut got = x.clone();
            backend::butterflies(&mut got, &twiddles, forward);
            assert_bits_eq(kind, "butterflies", &got, &want);
        }
    }

    #[test]
    fn tone_into_matches_oracle_bit_exactly(
        len in 1usize..130,
        freq_bins in -64.0f64..64.0,
    ) {
        let _s = serial();
        let _r = RestoreBackend;
        let mut want = vec![C64::ZERO; len];
        backend::scalar::tone_into(&mut want, len, freq_bins);
        for kind in backend::available() {
            backend::force(kind);
            let mut got = vec![C64::ZERO; len];
            backend::tone_into(&mut got, len, freq_bins);
            assert_bits_eq(kind, "tone_into", &got, &want);
        }
    }

    #[test]
    fn dot_matches_oracle_bit_exactly(
        a in arb_wild_signal(67),
        b in arb_wild_signal(67),
    ) {
        let _s = serial();
        let _r = RestoreBackend;
        let n = a.len().min(b.len());
        let want = backend::scalar::dot(&a[..n], &b[..n]);
        for kind in backend::available() {
            backend::force(kind);
            let got = backend::dot(&a[..n], &b[..n]);
            assert_scalar_bits_eq(kind, "dot", got, want);
        }
    }

    // The strided tone fill at every block width `1..=MAX_BLOCK_WIDTH`,
    // on every backend, against the scalar oracle — and every blocked
    // column against a plain width-1 `tone_into` at the same frequency,
    // which is the bit contract the estimator's width sweep rests on.
    #[test]
    fn tone_block_matches_oracle_and_width_one(
        rows in 1usize..67,
        width in 1usize..9,
        freqs in prop::collection::vec(-64.0f64..64.0, 8..9),
    ) {
        let _s = serial();
        let _r = RestoreBackend;
        let freqs = &freqs[..width];
        let mut want = vec![C64::ZERO; rows * width];
        backend::scalar::tone_block_into(&mut want, rows, freqs);
        // Blocked column j == dense tone at freqs[j], bit for bit.
        for (j, &f) in freqs.iter().enumerate() {
            let mut dense = vec![C64::ZERO; rows];
            backend::scalar::tone_into(&mut dense, rows, f);
            let col: Vec<C64> = (0..rows).map(|t| want[t * width + j]).collect();
            assert_bits_eq(BackendKind::Scalar, "tone_block column", &col, &dense);
        }
        for kind in backend::available() {
            backend::force(kind);
            let mut got = vec![C64::ZERO; rows * width];
            backend::tone_block_into(&mut got, rows, freqs);
            assert_bits_eq(kind, "tone_block_into", &got, &want);
        }
    }

    // The blocked projection and residual kernels on adversarial block
    // contents (NaNs, denormals, huge/tiny magnitudes cycled into the
    // AoSoA layout) at every width, on every backend — and each blocked
    // lane against its per-candidate width-1 reference, so a width-W
    // call is provably just W independent candidates.
    #[test]
    fn blocked_projection_and_residual_match_oracle_bit_exactly(
        rows in 1usize..67,
        width in 1usize..9,
        seed in arb_wild_signal(129),
        y in arb_wild_signal(67),
        coeffs in prop::collection::vec(((0u8..6, -1.0f64..1.0), (0u8..6, -1.0f64..1.0)), 8..9),
    ) {
        let _s = serial();
        let _r = RestoreBackend;
        // Cycle the drawn values out to the strided block length.
        let block: Vec<C64> = (0..rows * width).map(|i| seed[i % seed.len()]).collect();
        let coeffs: Vec<C64> = coeffs.into_iter().take(width).map(wild_c64).collect();

        let mut want_proj = vec![C64::ZERO; width];
        backend::scalar::conj_dot_block(&block, &y, &mut want_proj);
        let mut want_res = vec![0.0f64; width];
        backend::scalar::residual_block(&block, &y, &coeffs, &mut want_res);

        // Width-W lane j == the width-1 call on candidate j's dense column.
        for j in 0..width {
            let col: Vec<C64> = (0..rows).map(|t| block[t * width + j]).collect();
            let dense_proj = backend::scalar::conj_dot(&col, &y[..rows.min(y.len())]);
            assert_scalar_bits_eq(
                BackendKind::Scalar,
                "conj_dot_block lane vs conj_dot",
                want_proj[j],
                dense_proj,
            );
            let mut dense_res = [0.0f64];
            backend::scalar::residual_block(&col, &y, &coeffs[j..j + 1], &mut dense_res);
            prop_assert!(
                f64_matches(want_res[j], dense_res[0]),
                "residual_block lane {j} at width {width} diverged from its width-1 \
                 reference: got {:?} [{:#018x}], want {:?} [{:#018x}]",
                want_res[j],
                want_res[j].to_bits(),
                dense_res[0],
                dense_res[0].to_bits(),
            );
        }

        for kind in backend::available() {
            backend::force(kind);
            let mut got_proj = vec![C64::ZERO; width];
            backend::conj_dot_block(&block, &y, &mut got_proj);
            assert_bits_eq(kind, "conj_dot_block", &got_proj, &want_proj);
            let mut got_res = vec![0.0f64; width];
            backend::residual_block(&block, &y, &coeffs, &mut got_res);
            for (j, (g, w)) in got_res.iter().zip(&want_res).enumerate() {
                prop_assert!(
                    f64_matches(*g, *w),
                    "residual_block diverged from the scalar oracle on backend {} at \
                     lane {j}: got {:?} [{:#018x}], want {:?} [{:#018x}]",
                    kind.name(),
                    g,
                    g.to_bits(),
                    w,
                    w.to_bits(),
                );
            }
        }
    }
}

/// Forcing each backend in turn steers dispatch (`active()` reports the
/// forced kind), and every host always offers at least the scalar oracle
/// and the portable fallback.
#[test]
fn every_available_backend_is_forceable() {
    let _s = serial();
    let _r = RestoreBackend;
    let kinds = backend::available();
    assert!(kinds.contains(&BackendKind::Scalar));
    assert!(kinds.contains(&BackendKind::Portable));
    for kind in kinds {
        backend::force(kind);
        assert_eq!(backend::active(), kind);
    }
}
