//! # choir-station — streaming base-station runtime for the Choir decoder
//!
//! The batch pipeline (`choir-core`) decodes pre-cut slot captures; real
//! base stations see an unbroken stream of IQ chunks of arbitrary sizes,
//! with gaps, partial slots, and bursts faster than the decoder. This
//! crate turns any `Iterator<Item = IqChunk>` into decoded frames under a
//! **bounded-memory, never-block-ingest** contract:
//!
//! - [`SampleRing`] — fixed-capacity sample ring addressed by absolute
//!   stream index, with explicit overflow accounting ([`ring::RingGap`]).
//! - [`Station`] — slot cutting from a [`SlotSchedule`] (beacon-aligned
//!   periodic/explicit, or free-running preamble detection), a bounded
//!   decode queue with drop-oldest shedding ([`SheddingEvent`]), and
//!   graceful degradation (reduced SIC passes) under pressure.
//! - [`StationMetrics`] — monotone counter snapshot across the whole
//!   ingest → detect → dispatch → decode path, serializable to JSON.
//!
//! In scheduled modes the station's captures are sample-exact, so its
//! output is bit-identical to batch-decoding the same pre-cut slots — the
//! `equivalence` integration test enforces this against the seeded golden
//! scenarios at 1 and 4 worker threads.

#![deny(missing_docs)]

pub mod metrics;
pub mod ring;
pub mod station;

pub use metrics::StationMetrics;
pub use ring::SampleRing;
pub use station::{
    IqChunk, ShedReason, SheddingEvent, SlotSchedule, Station, StationConfig, StationReport,
    StationSlot,
};
