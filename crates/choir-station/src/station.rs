//! The streaming runtime: chunked IQ in, decoded slots out.
//!
//! # Pipeline
//!
//! ```text
//! push_chunk ─→ SampleRing ─→ slot cutter ─→ bounded queue ─→ service()
//!      │            │         (schedule or     (drop-oldest)      │
//!      │       StreamScanner    detector)                     choir-pool
//!      └── never blocks ───────────────────────────────→ decoded slots
//! ```
//!
//! The ingest side ([`Station::push_chunk`]) **never blocks and never
//! grows memory**: the ring overwrites its oldest samples when full, the
//! capture queue drops its oldest captures when past
//! [`StationConfig::max_in_flight`], and both paths account every loss as
//! a [`SheddingEvent`]. The decode side ([`Station::service`]) drains up
//! to a batch of captures per call through the `choir-pool` workers; when
//! the queue is deeper than [`StationConfig::pressure_watermark`] it
//! degrades gracefully (fewer packet-level SIC passes) instead of falling
//! further behind.
//!
//! Slot boundaries come from a [`SlotSchedule`]: beacon-aligned (periodic
//! or explicit — the Choir deployment model, where the base station's
//! beacon defines the slot grid) or free-running preamble detection via
//! the incremental [`lora_phy::detect::StreamScanner`]. In scheduled
//! modes the cut captures are sample-exact, so decoding a streamed slot
//! is **bit-identical** to batch-decoding the same pre-cut capture; in
//! free-running mode the detector resolves the start to one symbol
//! window, which the decoder's timing acquisition absorbs.

use std::collections::VecDeque;

use choir_core::decoder::{ChoirConfig, ChoirDecoder, SlotResult, SlotView};
use choir_core::dedup::StartDedup;
use choir_core::error::DecodeError;
use choir_core::profile::{scope, Stage};
use choir_dsp::checks;
use choir_dsp::complex::C64;
use choir_pool::ThreadPool;
use choir_trace::HypothesisTransition;
use lora_phy::detect::{HypothesisEvent, StreamScanner};
use lora_phy::modem::Modem;
use lora_phy::params::PhyParams;

use crate::metrics::StationMetrics;
use crate::ring::SampleRing;

/// One chunk of IQ samples, of arbitrary length (a USRP recv buffer, a
/// file block, one sample — the station re-assembles windows internally).
pub type IqChunk = Vec<C64>;

/// Where slot boundaries come from.
#[derive(Clone, Debug)]
pub enum SlotSchedule {
    /// Beacon-aligned periodic slots: slot `k` starts at absolute sample
    /// `first + k·period`.
    Periodic {
        /// Absolute sample index of slot 0's boundary.
        first: u64,
        /// Slot period in samples (clamped to ≥ 1).
        period: u64,
    },
    /// Explicit absolute slot-start samples (sorted internally).
    Explicit(Vec<u64>),
    /// No beacon: free-running preamble detection. Slot starts are
    /// resolved to the symbol window containing the detected preamble
    /// edge (±1 symbol, absorbed by the decoder's timing acquisition).
    FreeRunning,
}

/// Why a slot was load-shed instead of decoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The capture queue was past `max_in_flight`; the oldest pending
    /// capture was dropped (drop-oldest keeps the freshest slots — stale
    /// decodes are worthless to a live MAC).
    QueueFull,
    /// The ring overwrote part of the capture's sample range before it
    /// could be cut: ingest outran the consumer past the ring's capacity.
    RingOverrun,
}

/// One counted load-shedding decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SheddingEvent {
    /// Absolute sample index of the shed slot's boundary.
    pub slot_start: u64,
    /// What overflowed.
    pub reason: ShedReason,
}

/// One slot that went through the decoder.
#[derive(Clone, Debug)]
pub struct StationSlot {
    /// Absolute sample index of the slot boundary in the input stream.
    pub slot_start: u64,
    /// True when this slot was decoded under pressure with reduced SIC.
    pub degraded: bool,
    /// The decode outcome (same type the batch path returns).
    pub result: SlotResult,
}

/// Everything a finished stream produced.
#[derive(Clone, Debug)]
pub struct StationReport {
    /// Decoded slots, in slot order.
    pub slots: Vec<StationSlot>,
    /// Every load-shedding decision, in the order it was taken.
    pub shed: Vec<SheddingEvent>,
    /// Final counter snapshot.
    pub metrics: StationMetrics,
}

/// Streaming-runtime configuration.
#[derive(Clone, Debug)]
pub struct StationConfig {
    /// PHY parameters of the uplink.
    pub params: PhyParams,
    /// Decoder configuration used at nominal load.
    pub decoder: ChoirConfig,
    /// Expected data symbols per slot (after the sync word).
    pub num_data_symbols: usize,
    /// Symbols of capture kept *before* each slot boundary (guard lead-in;
    /// matches the scenario builder's guard of 2).
    pub lead_symbols: usize,
    /// Symbols of capture kept after the last frame symbol (guard + drift
    /// slack; matches the scenario builder's 2·guard tail).
    pub tail_symbols: usize,
    /// Ring size in samples. Sizing math (see DESIGN.md §10): a capture
    /// spans `lead + preamble + 2 + num_data_symbols + tail` symbols, and
    /// free-running detection reports a preamble only after the packet's
    /// run of hot windows *ends* — so the ring must hold at least one full
    /// capture plus the detection lag. The default is 4 captures.
    pub ring_capacity: usize,
    /// Max captures queued for decode before drop-oldest shedding.
    pub max_in_flight: usize,
    /// Captures decoded per [`Station::service`] call.
    pub service_batch: usize,
    /// Peak-to-average detection threshold (≈ `2^SF` for clean signal,
    /// O(1) for noise; 40 suits SF7–8 at the SNRs of interest). Also the
    /// scheduled-mode occupancy gate; set to 0.0 to decode every
    /// scheduled slot unconditionally.
    pub detect_threshold: f64,
    /// Free-running start-dedup separation, in symbols (default: one
    /// preamble length). Confirmed starts closer than this are the same
    /// frame seen by duplicate hypotheses (CFO straddle, near-far
    /// adjacency) and fold into one capture; genuinely distinct frames —
    /// even zero-gap back-to-back ones — are at least a frame apart and
    /// always cut. 0 disables dedup.
    pub detect_dedup_symbols: usize,
    /// Queue depth beyond which decodes run degraded.
    pub pressure_watermark: usize,
    /// Packet-level SIC passes under pressure (nominal decodes use
    /// `decoder.sic_passes`).
    pub pressure_sic_passes: usize,
    /// Reject captures containing NaN/Inf with a typed
    /// [`DecodeError::NonFiniteInput`] in *every* build profile. When
    /// false (default), debug builds instead let the capture reach the
    /// decoder's `choir_dsp::checks` sanitizer — loud, by design — while
    /// release builds still reject (the sanitizer is compiled out there,
    /// and garbage must not decode silently).
    pub reject_non_finite: bool,
}

impl StationConfig {
    /// Defaults for a given symbol count: guard geometry matching the
    /// testbed's scenario builder, a 4-capture ring, and an 8-slot queue.
    pub fn new(params: PhyParams, num_data_symbols: usize) -> Self {
        let mut cfg = StationConfig {
            params,
            decoder: ChoirConfig::default(),
            num_data_symbols,
            lead_symbols: 2,
            tail_symbols: 4,
            ring_capacity: 0,
            max_in_flight: 8,
            service_batch: 4,
            detect_threshold: 40.0,
            detect_dedup_symbols: params.preamble_len,
            pressure_watermark: 6,
            pressure_sic_passes: 1,
            reject_non_finite: false,
        };
        cfg.ring_capacity = 4 * cfg.capture_len();
        cfg
    }

    /// Defaults for a known payload length in bytes (scheduled uplink).
    pub fn known_len(params: PhyParams, payload_len: usize) -> Self {
        let nds = lora_phy::frame::frame_symbol_count(&params, payload_len);
        StationConfig::new(params, nds)
    }

    /// Symbols in one slot: preamble + sync word + data.
    pub fn slot_symbols(&self) -> usize {
        self.params.preamble_len + 2 + self.num_data_symbols
    }

    /// Samples in one cut capture (lead + slot + tail).
    pub fn capture_len(&self) -> usize {
        let n = self.params.samples_per_symbol();
        (self.lead_symbols + self.slot_symbols() + self.tail_symbols) * n
    }
}

/// A cut capture waiting for a decode worker.
#[derive(Clone, Debug)]
struct PendingCapture {
    slot_start: u64,
    rel_slot_start: usize,
    samples: Vec<C64>,
    /// `(nan, inf)` component counts when the ingest sanitizer zeroed
    /// hostile samples inside this capture's span (policy mode only).
    non_finite: Option<(usize, usize)>,
}

/// Components above this magnitude square to values that overflow the
/// pipeline's energy accumulators (FFT Parseval checks, detection
/// metrics), so under the rejection policy they are treated exactly like
/// an explicit Inf: a capture is as undecodable either way.
const MAX_COMPONENT: f64 = 1e150;

/// Classifies one component: `Some(true)` = NaN, `Some(false)` = Inf or
/// energy-overflow magnitude, `None` = usable.
fn hostile_component(v: f64) -> Option<bool> {
    if v.is_nan() {
        Some(true)
    } else if v.is_infinite() || v.abs() > MAX_COMPONENT {
        Some(false)
    } else {
        None
    }
}

/// The streaming base-station runtime. See the module docs for the
/// pipeline; typical use is [`Station::run`] over a chunk iterator, or
/// [`Station::push_chunk`] + [`Station::service`] for explicit pacing.
#[derive(Debug)]
pub struct Station {
    cfg: StationConfig,
    modem: Modem,
    decoder: ChoirDecoder,
    degraded_decoder: ChoirDecoder,
    pool: ThreadPool,
    ring: SampleRing,
    scanner: Option<StreamScanner>,
    /// Ascending future slot boundaries (Explicit mode).
    explicit: VecDeque<u64>,
    /// Next slot boundary and period (Periodic mode).
    periodic: Option<(u64, u64)>,
    /// Detected-but-not-yet-cut slot boundaries (FreeRunning mode), kept
    /// sorted — confirmations arrive in confirmation order, which for
    /// overlapping frames is not start order.
    pending_detects: VecDeque<u64>,
    /// Start-dedup policy applied to confirmed starts before cutting.
    dedup: StartDedup,
    /// End sample of the most recently cut free-running frame. A later
    /// capture's lead-in is clamped to this so the previous frame's tail
    /// (possibly 20 dB hotter) is not re-decoded inside the next slot's
    /// view, where it would capture timing acquisition away from the
    /// frame the slot was cut for.
    prev_frame_end: Option<u64>,
    queue: VecDeque<PendingCapture>,
    slots: Vec<StationSlot>,
    shed: Vec<SheddingEvent>,
    metrics: StationMetrics,
    /// Scratch for detector hits (no per-chunk allocation).
    hit_scratch: Vec<u64>,
    /// Scratch for drained hypothesis lifecycle events.
    event_scratch: Vec<HypothesisEvent>,
    /// Absolute positions of components zeroed by the ingest sanitizer
    /// (`true` = was NaN), ascending; pruned with the ring tail.
    corrupt: VecDeque<(u64, bool)>,
    /// Last serviced batch's pressure mode, so the degrade *transition*
    /// (not every batch) lands in the trace log.
    was_degraded: bool,
}

impl Station {
    /// Builds a station on the process-global worker pool.
    pub fn new(cfg: StationConfig, schedule: SlotSchedule) -> Self {
        let modem = Modem::new(cfg.params);
        let decoder = ChoirDecoder::with_config(cfg.params, cfg.decoder);
        let mut degraded_cfg = cfg.decoder;
        degraded_cfg.sic_passes = cfg.pressure_sic_passes.max(1);
        let degraded_decoder = ChoirDecoder::with_config(cfg.params, degraded_cfg);
        let ring = SampleRing::with_capacity(cfg.ring_capacity.max(cfg.capture_len()));
        let (scanner, explicit, periodic) = match schedule {
            SlotSchedule::FreeRunning => (
                Some(StreamScanner::new(modem.clone(), cfg.detect_threshold)),
                VecDeque::new(),
                None,
            ),
            SlotSchedule::Explicit(mut starts) => {
                starts.sort_unstable();
                (None, starts.into(), None)
            }
            SlotSchedule::Periodic { first, period } => {
                (None, VecDeque::new(), Some((first, period.max(1))))
            }
        };
        let n = cfg.params.samples_per_symbol() as u64;
        let dedup = StartDedup::new(cfg.detect_dedup_symbols as u64 * n);
        Station {
            cfg,
            modem,
            decoder,
            degraded_decoder,
            pool: *choir_pool::global(),
            ring,
            scanner,
            explicit,
            periodic,
            pending_detects: VecDeque::new(),
            dedup,
            prev_frame_end: None,
            queue: VecDeque::new(),
            slots: Vec::new(),
            shed: Vec::new(),
            metrics: StationMetrics::default(),
            hit_scratch: Vec::new(),
            event_scratch: Vec::new(),
            corrupt: VecDeque::new(),
            was_degraded: false,
        }
    }

    /// Pins the decode workers to an explicit pool (tests and benches).
    pub fn with_pool(mut self, pool: ThreadPool) -> Self {
        self.pool = pool;
        self
    }

    /// The current counter snapshot.
    pub fn metrics(&self) -> &StationMetrics {
        &self.metrics
    }

    /// Captures currently queued for decode.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Ingests one chunk: appends to the ring, advances detection, cuts
    /// any slot whose capture is now fully resident, and sheds (never
    /// blocks) if the decode side is behind. Decoding itself happens in
    /// [`Station::service`].
    pub fn push_chunk(&mut self, chunk: &[C64]) {
        // The profile scope is exclusive: the nested Detect scope below
        // bills its own time, not Ingest's.
        scope(Stage::Ingest, || {
            self.metrics.chunks_ingested += 1;
            self.metrics.samples_ingested += chunk.len() as u64;
            // Under the rejection policy hostile components are zeroed
            // *before* the ring and detector see them — detection runs
            // FFTs whose debug sanitizers would otherwise fire on garbage
            // the station has promised to absorb as a typed error.
            let sanitized = if self.cfg.reject_non_finite {
                self.sanitize(chunk)
            } else {
                None
            };
            let data: &[C64] = sanitized.as_deref().unwrap_or(chunk);
            let overwritten = self.ring.push(data);
            self.metrics.samples_dropped += overwritten;
            choir_trace::full(|| choir_trace::TraceEvent::StationIngest {
                samples: data.len() as u64,
                overwritten,
                stream_pos: self.ring.head(),
            });
            if self.scanner.is_some() {
                scope(Stage::Detect, || self.detect(data));
            }
            self.cut_ready(false);
            self.trim_ring();
        });
    }

    /// Decodes up to one batch of queued captures on the worker pool.
    /// Call once per pushed chunk for lowest latency, or at whatever pace
    /// the deployment can afford — the queue bounds memory either way.
    pub fn service(&mut self) {
        if self.queue.is_empty() {
            return;
        }
        let degraded = self.queue.len() > self.cfg.pressure_watermark.max(1);
        if degraded != self.was_degraded {
            let depth = self.queue.len() as u64;
            choir_trace::outcome(|| choir_trace::TraceEvent::StationDegrade {
                active: degraded,
                queue_depth: depth,
            });
            self.was_degraded = degraded;
        }
        let take = self.cfg.service_batch.max(1).min(self.queue.len());
        let batch: Vec<PendingCapture> = self.queue.drain(..take).collect();
        self.metrics.queue_depth = self.queue.len() as u64;
        self.decode_batch(batch, degraded);
    }

    /// Drains detection state and the queue, decoding every remaining
    /// slot (including ones truncated by end-of-stream), and returns the
    /// final report.
    pub fn finish(mut self) -> StationReport {
        if self.scanner.is_some() {
            self.hit_scratch.clear();
            if let Some(scanner) = self.scanner.as_mut() {
                scanner.flush(&mut self.hit_scratch);
            }
            self.ingest_detections();
        }
        self.cut_ready(true);
        while !self.queue.is_empty() {
            self.service();
        }
        self.metrics.queue_depth = 0;
        self.metrics.trace_snapshot();
        StationReport {
            slots: self.slots,
            shed: self.shed,
            metrics: self.metrics,
        }
    }

    /// Convenience driver: pushes every chunk, servicing after each, then
    /// finishes.
    pub fn run<I>(mut self, chunks: I) -> StationReport
    where
        I: IntoIterator<Item = IqChunk>,
    {
        for chunk in chunks {
            self.push_chunk(&chunk);
            self.service();
        }
        self.finish()
    }

    /// Policy-mode ingest sanitizer: returns a copy of `chunk` with every
    /// hostile component's sample zeroed (`None` when the chunk is clean),
    /// recording each zeroed component's absolute position for typed
    /// rejection at cut time.
    fn sanitize(&mut self, chunk: &[C64]) -> Option<Vec<C64>> {
        let base = self.ring.head();
        let mut cleaned: Option<Vec<C64>> = None;
        for (i, z) in chunk.iter().enumerate() {
            let bad = [hostile_component(z.re), hostile_component(z.im)];
            if bad.iter().any(Option::is_some) {
                let buf = cleaned.get_or_insert_with(|| chunk.to_vec());
                if let Some(s) = buf.get_mut(i) {
                    *s = C64::ZERO;
                }
                for was_nan in bad.into_iter().flatten() {
                    self.corrupt.push_back((base + i as u64, was_nan));
                }
            }
        }
        cleaned
    }

    /// Feeds the incremental scanner and registers its output.
    fn detect(&mut self, chunk: &[C64]) {
        let Some(scanner) = self.scanner.as_mut() else {
            return;
        };
        self.hit_scratch.clear();
        scanner.push(chunk, &mut self.hit_scratch);
        self.ingest_detections();
    }

    /// Registers tracker output after a scanner push or flush: lifecycle
    /// events into the metrics counters and the trace log, confirmed
    /// starts (in `hit_scratch`) through the dedup policy into the
    /// sorted pending-detect queue.
    fn ingest_detections(&mut self) {
        if let Some(scanner) = self.scanner.as_mut() {
            self.metrics.windows_scanned = scanner.windows_scanned();
            self.event_scratch.clear();
            scanner.drain_events(&mut self.event_scratch);
        }
        for e in &self.event_scratch {
            match *e {
                HypothesisEvent::Born {
                    id,
                    window,
                    start,
                    bin,
                    score,
                } => {
                    self.metrics.hyp_born += 1;
                    choir_trace::full(|| {
                        choir_trace::TraceEvent::hypothesis(
                            HypothesisTransition::Born,
                            id,
                            window,
                            start,
                            bin,
                            score,
                            1,
                        )
                    });
                }
                HypothesisEvent::Confirmed {
                    id,
                    window,
                    start,
                    bin,
                    score,
                    support,
                } => {
                    self.metrics.hyp_confirmed += 1;
                    choir_trace::outcome(|| {
                        choir_trace::TraceEvent::hypothesis(
                            HypothesisTransition::Confirmed,
                            id,
                            window,
                            start,
                            bin,
                            score,
                            support,
                        )
                    });
                }
                HypothesisEvent::Expired {
                    id,
                    window,
                    start,
                    bin,
                    support,
                } => {
                    self.metrics.hyp_expired += 1;
                    choir_trace::full(|| {
                        choir_trace::TraceEvent::hypothesis(
                            HypothesisTransition::Expired,
                            id,
                            window,
                            start,
                            bin,
                            0.0,
                            support,
                        )
                    });
                }
                HypothesisEvent::Merged {
                    id,
                    window,
                    start,
                    bin,
                    ..
                } => {
                    self.metrics.hyp_merged += 1;
                    choir_trace::full(|| {
                        choir_trace::TraceEvent::hypothesis(
                            HypothesisTransition::Merged,
                            id,
                            window,
                            start,
                            bin,
                            0.0,
                            0,
                        )
                    });
                }
            }
        }
        for i in 0..self.hit_scratch.len() {
            let start = self.hit_scratch[i];
            if self.dedup.admit(start) {
                self.metrics.detector_triggers += 1;
                // Sorted insert: overlapping frames confirm out of start
                // order, and the cutter consumes boundaries front-first.
                let pos = self.pending_detects.partition_point(|&s| s <= start);
                self.pending_detects.insert(pos, start);
            } else {
                self.metrics.detections_deduped += 1;
            }
        }
    }

    /// Absolute capture range `[a, b)` for a slot boundary.
    fn capture_span(&self, slot_start: u64) -> (u64, u64) {
        let n = self.cfg.params.samples_per_symbol() as u64;
        let a = slot_start.saturating_sub(self.cfg.lead_symbols as u64 * n);
        let b = slot_start + (self.cfg.slot_symbols() + self.cfg.tail_symbols) as u64 * n;
        (a, b)
    }

    /// The next slot boundary this station expects, without consuming it.
    fn peek_next_slot(&self) -> Option<u64> {
        if let Some(&s) = self.pending_detects.front() {
            return Some(s);
        }
        if let Some(&s) = self.explicit.front() {
            return Some(s);
        }
        self.periodic.map(|(next, _)| next)
    }

    /// Consumes the slot boundary returned by [`Self::peek_next_slot`].
    fn advance_slot(&mut self) {
        if self.pending_detects.pop_front().is_some() || self.explicit.pop_front().is_some() {
            return;
        }
        if let Some((next, period)) = self.periodic {
            self.periodic = Some((next + period, period));
        }
    }

    /// Cuts every slot whose capture is resident. With `at_end` set
    /// (stream finished), also cuts slots truncated by end-of-stream.
    fn cut_ready(&mut self, at_end: bool) {
        while let Some(slot_start) = self.peek_next_slot() {
            let (mut a, b) = self.capture_span(slot_start);
            if self.scanner.is_some() {
                // Free-running slots are cut in confirmed-start order, so
                // the previous frame's span is known: exclude it from this
                // capture's lead-in (shared samples are decoded once, in
                // the slot they belong to). A genuine overlap keeps the
                // intersection — those samples are inside *this* slot's
                // own span and cannot be cut away.
                if let Some(prev_end) = self.prev_frame_end {
                    a = a.max(prev_end.min(slot_start));
                }
            }
            if at_end {
                // Nothing of this slot was ever received → it wasn't seen.
                if a >= self.ring.head() {
                    break;
                }
            } else if b > self.ring.head() {
                break; // wait for more samples
            }
            self.advance_slot();
            if self.scanner.is_some() {
                let n = self.cfg.params.samples_per_symbol() as u64;
                self.prev_frame_end = Some(slot_start + self.cfg.slot_symbols() as u64 * n);
            }
            self.cut_one(slot_start, a, b.min(self.ring.head()));
        }
    }

    /// Cuts `[a, b)` for the slot at `slot_start`, gates on occupancy,
    /// and enqueues with drop-oldest shedding.
    fn cut_one(&mut self, slot_start: u64, a: u64, b: u64) {
        self.metrics.slots_seen += 1;
        let rel_slot_start = (slot_start - a) as usize;
        let mut samples = Vec::new();
        if self.ring.copy_range(a, b, &mut samples).is_err() {
            // Part of the capture was overwritten before we got here:
            // ingest outran the decode side past the ring's capacity.
            self.metrics.slots_shed += 1;
            choir_trace::outcome(|| choir_trace::TraceEvent::StationShed {
                slot_start,
                reason: "ring_overrun",
            });
            self.shed.push(SheddingEvent {
                slot_start,
                reason: ShedReason::RingOverrun,
            });
            return;
        }
        // Components the ingest sanitizer zeroed inside this span make
        // the capture a typed rejection regardless of what the (zeroed)
        // occupancy gate would say about it.
        let mut nan = 0usize;
        let mut inf = 0usize;
        for &(abs, was_nan) in &self.corrupt {
            if abs >= b {
                break;
            }
            if abs >= a {
                if was_nan {
                    nan += 1;
                } else {
                    inf += 1;
                }
            }
        }
        let non_finite = (nan + inf > 0).then_some((nan, inf));
        // Scheduled slots are gated on preamble-region energy so an idle
        // slot costs windows, not a decode. Free-running hits already
        // proved energy at detection time.
        if non_finite.is_none() && self.scanner.is_none() {
            let occupied = scope(Stage::Detect, || self.occupied(&samples, rel_slot_start));
            if !occupied {
                self.metrics.slots_empty += 1;
                return;
            }
            self.metrics.detector_triggers += 1;
        }
        self.queue.push_back(PendingCapture {
            slot_start,
            rel_slot_start,
            samples,
            non_finite,
        });
        while self.queue.len() > self.cfg.max_in_flight.max(1) {
            if let Some(victim) = self.queue.pop_front() {
                self.metrics.slots_shed += 1;
                choir_trace::outcome(|| choir_trace::TraceEvent::StationShed {
                    slot_start: victim.slot_start,
                    reason: "queue_full",
                });
                self.shed.push(SheddingEvent {
                    slot_start: victim.slot_start,
                    reason: ShedReason::QueueFull,
                });
            }
        }
        self.metrics.queue_depth = self.queue.len() as u64;
        self.metrics.max_queue_depth = self.metrics.max_queue_depth.max(self.metrics.queue_depth);
    }

    /// Occupancy gate: any interior preamble window above the detection
    /// threshold. Interior windows (1..preamble_len) are pure preamble
    /// for every sub-symbol transmitter delay, so a single hot window is
    /// a reliable "somebody transmitted" signal at gate SNRs.
    fn occupied(&mut self, samples: &[C64], rel_slot_start: usize) -> bool {
        let n = self.cfg.params.samples_per_symbol();
        let mut hot = false;
        for w in 1..self.cfg.params.preamble_len {
            let lo = rel_slot_start + w * n;
            let Some(win) = samples.get(lo..lo + n) else {
                break;
            };
            self.metrics.windows_scanned += 1;
            if self.modem.detection_metric(win) >= self.cfg.detect_threshold {
                hot = true;
                break;
            }
        }
        hot
    }

    /// Discards ring samples no future capture can need.
    fn trim_ring(&mut self) {
        let mut keep_from = match self.peek_next_slot() {
            Some(s) => self.capture_span(s).0,
            None => {
                if self.scanner.is_some() {
                    // A confirmation lands at the sync word, roughly a
                    // preamble behind the stream head: retain a capture
                    // plus that lag.
                    let n = self.cfg.params.samples_per_symbol() as u64;
                    let retain =
                        self.cfg.capture_len() as u64 + (self.cfg.lead_symbols as u64 + 2) * n;
                    self.ring.head().saturating_sub(retain)
                } else {
                    self.ring.head()
                }
            }
        };
        // A live hypothesis may yet confirm with a start at its birth
        // window — its capture must still be cuttable then.
        if let Some(start) = self.scanner.as_ref().and_then(|s| s.earliest_live_start()) {
            keep_from = keep_from.min(self.capture_span(start).0);
        }
        // Dedup history behind every possible future confirmation is dead.
        if let Some(scanner) = self.scanner.as_ref() {
            let horizon = scanner
                .earliest_live_start()
                .unwrap_or_else(|| scanner.position());
            let n = self.cfg.params.samples_per_symbol() as u64;
            let sep = self.cfg.detect_dedup_symbols as u64 * n;
            self.dedup.prune_below(horizon.saturating_sub(sep));
        }
        self.ring.discard_until(keep_from);
        let tail = self.ring.tail();
        while self.corrupt.front().is_some_and(|&(abs, _)| abs < tail) {
            self.corrupt.pop_front();
        }
    }

    /// Decodes one drained batch, recording results and counters.
    fn decode_batch(&mut self, batch: Vec<PendingCapture>, degraded: bool) {
        // Non-finite policy (see `StationConfig::reject_non_finite`):
        // corrupt captures either become a typed error here or — debug
        // builds, policy off — deliberately reach the decoder's sanitizer.
        let mut out: Vec<Option<SlotResult>> = batch.iter().map(|_| None).collect();
        let mut decode_idx: Vec<usize> = Vec::with_capacity(batch.len());
        for (i, cap) in batch.iter().enumerate() {
            // Policy mode: the ingest sanitizer already zeroed and counted
            // the corruption — the capture carries its counts. Otherwise,
            // release builds scan here (the debug sanitizer is compiled
            // out, and garbage must not decode silently); debug builds
            // without the policy let the decoder's own sanitizer fire.
            let counts = if let Some((nan, inf)) = cap.non_finite {
                Some((nan, inf))
            } else if !checks::enabled() {
                let report = checks::scan(&cap.samples);
                (!report.is_finite()).then_some((report.nan, report.inf))
            } else {
                None
            };
            if let Some((nan, inf)) = counts {
                out[i] = Some(SlotResult {
                    users: Vec::new(),
                    error: Some(DecodeError::NonFiniteInput { nan, inf }.traced()),
                });
            } else {
                decode_idx.push(i);
            }
        }
        let dec = if degraded {
            &self.degraded_decoder
        } else {
            &self.decoder
        };
        let views: Vec<SlotView<'_>> = decode_idx
            .iter()
            .filter_map(|&i| batch.get(i))
            .map(|cap| SlotView::new(&cap.samples, cap.rel_slot_start, self.cfg.num_data_symbols))
            .collect();
        let results = dec.decode_slot_views_with_pool(&views, self.pool);
        for (&i, r) in decode_idx.iter().zip(results) {
            if let Some(slot) = out.get_mut(i) {
                *slot = Some(r);
            }
        }
        for (cap, slot) in batch.into_iter().zip(out) {
            let Some(result) = slot else { continue };
            self.metrics.slots_decoded += 1;
            if degraded {
                self.metrics.degraded_decodes += 1;
            }
            if let Some(e) = result.error {
                self.metrics.decode_errors += 1;
                if e == DecodeError::NoUsersFound {
                    // The detector (or gate) fired on something the
                    // decoder could not attribute to any user.
                    self.metrics.false_triggers += 1;
                }
            }
            self.metrics.users_decoded += result.users.len() as u64;
            self.metrics.users_crc_ok += result.ok_users().count() as u64;
            self.slots.push(StationSlot {
                slot_start: cap.slot_start,
                degraded,
                result,
            });
        }
    }
}
