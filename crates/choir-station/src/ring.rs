//! Bounded sample ring with absolute stream addressing and explicit
//! overflow accounting.
//!
//! The workspace confines `unsafe` to the SIMD backend leaves (the
//! `simd_boundary` lint), so this is not a literal atomic SPSC
//! queue; it is the single-owner safe equivalent with the same contract
//! the station needs from one: **bounded memory, a never-blocking
//! producer, and loud accounting**. `push` never blocks and never grows
//! the buffer — when the producer outruns the consumer the oldest samples
//! are overwritten and *counted*, and any later attempt to read a range
//! that included them fails with a typed [`RingGap`] instead of returning
//! silently corrupt IQ.
//!
//! Samples are addressed by their **absolute stream index** (sample 0 is
//! the first sample ever pushed), which is what makes capture cutting
//! across chunk boundaries trivial: the slot scheduler talks in absolute
//! indices and never needs to know where the ring wrapped.

use choir_dsp::complex::C64;

/// A requested range was no longer (or not yet) resident in the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingGap {
    /// Requested range start (absolute sample index).
    pub lo: u64,
    /// Requested range end (exclusive).
    pub hi: u64,
    /// Oldest sample still resident when the request failed.
    pub tail: u64,
    /// One past the newest sample pushed.
    pub head: u64,
}

impl std::fmt::Display for RingGap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ring gap: requested [{}, {}) but resident range is [{}, {})",
            self.lo, self.hi, self.tail, self.head
        )
    }
}

impl std::error::Error for RingGap {}

/// Fixed-capacity ring over complex IQ samples, addressed by absolute
/// stream index.
#[derive(Clone, Debug)]
pub struct SampleRing {
    buf: Vec<C64>,
    /// Absolute index of the oldest sample still resident.
    tail: u64,
    /// Absolute index one past the newest sample (= total samples pushed).
    head: u64,
    /// Total samples overwritten before being consumed.
    overwritten: u64,
}

impl SampleRing {
    /// A ring holding at most `capacity` samples (at least one).
    pub fn with_capacity(capacity: usize) -> Self {
        SampleRing {
            buf: vec![C64::ZERO; capacity.max(1)],
            tail: 0,
            head: 0,
            overwritten: 0,
        }
    }

    /// Maximum resident samples.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// One past the newest absolute sample index (total pushed).
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Oldest absolute sample index still resident.
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Currently resident samples.
    pub fn len(&self) -> usize {
        (self.head - self.tail) as usize
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Total samples ever overwritten before consumption.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Appends `chunk`, overwriting the oldest samples when full. Never
    /// blocks, never reallocates. Returns how many resident samples were
    /// overwritten (0 in the nominal, consumer-keeps-up regime).
    pub fn push(&mut self, chunk: &[C64]) -> u64 {
        let cap = self.buf.len() as u64;
        let mut dropped = 0u64;
        for &s in chunk {
            if self.head - self.tail == cap {
                self.tail += 1;
                dropped += 1;
            }
            // Write position = absolute index mod capacity: resident data
            // is always a contiguous absolute range, however it wraps.
            self.buf[(self.head % cap) as usize] = s;
            self.head += 1;
        }
        self.overwritten += dropped;
        if dropped > 0 {
            // Provenance: a wrap means ingest outran the decode side past
            // the ring capacity — any capture spanning the old tail will
            // later surface as a `ring_overrun` shed.
            choir_trace::full(|| choir_trace::TraceEvent::RingOverwrite {
                overwritten: dropped,
                tail: self.tail,
                head: self.head,
            });
        }
        dropped
    }

    /// Copies the absolute range `[lo, hi)` into `out` (cleared first).
    /// Fails with a [`RingGap`] if any part of the range was overwritten
    /// or has not been pushed yet.
    pub fn copy_range(&self, lo: u64, hi: u64, out: &mut Vec<C64>) -> Result<(), RingGap> {
        if lo > hi || lo < self.tail || hi > self.head {
            return Err(RingGap {
                lo,
                hi,
                tail: self.tail,
                head: self.head,
            });
        }
        let cap = self.buf.len() as u64;
        out.clear();
        out.reserve((hi - lo) as usize);
        for abs in lo..hi {
            out.push(self.buf[(abs % cap) as usize]);
        }
        Ok(())
    }

    /// Marks everything before absolute index `abs` as consumed, freeing
    /// it for overwrite without it counting as dropped. Clamped to the
    /// resident range; the tail never moves backwards.
    pub fn discard_until(&mut self, abs: u64) {
        self.tail = abs.clamp(self.tail, self.head);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choir_dsp::complex::c64;

    fn seq(lo: usize, hi: usize) -> Vec<C64> {
        (lo..hi).map(|i| c64(i as f64, -(i as f64))).collect()
    }

    #[test]
    fn push_and_copy_roundtrip() {
        let mut r = SampleRing::with_capacity(16);
        assert!(r.is_empty());
        assert_eq!(r.push(&seq(0, 10)), 0);
        assert_eq!((r.tail(), r.head(), r.len()), (0, 10, 10));
        let mut out = Vec::new();
        r.copy_range(3, 8, &mut out).unwrap();
        assert_eq!(out, seq(3, 8));
        // Empty range is fine.
        r.copy_range(5, 5, &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut r = SampleRing::with_capacity(8);
        assert_eq!(r.push(&seq(0, 6)), 0);
        // 6 resident + 5 pushed = 11 > 8: three oldest overwritten.
        assert_eq!(r.push(&seq(6, 11)), 3);
        assert_eq!(r.overwritten(), 3);
        assert_eq!((r.tail(), r.head()), (3, 11));
        let mut out = Vec::new();
        r.copy_range(3, 11, &mut out).unwrap();
        assert_eq!(out, seq(3, 11));
        // The overwritten prefix is gone — loudly.
        let err = r.copy_range(2, 5, &mut out).unwrap_err();
        assert_eq!(err.tail, 3);
        // The future is not readable either.
        assert!(r.copy_range(9, 12, &mut out).is_err());
        assert!(r.copy_range(7, 3, &mut out).is_err());
    }

    #[test]
    fn discard_frees_without_counting() {
        let mut r = SampleRing::with_capacity(8);
        r.push(&seq(0, 8));
        r.discard_until(6);
        assert_eq!(r.len(), 2);
        // Re-fill: no overwrites needed now.
        assert_eq!(r.push(&seq(8, 14)), 0);
        assert_eq!(r.overwritten(), 0);
        // Tail never moves backwards, and never past head.
        r.discard_until(2);
        assert_eq!(r.tail(), 6);
        r.discard_until(1_000);
        assert_eq!(r.tail(), r.head());
    }

    #[test]
    fn chunk_larger_than_capacity() {
        let mut r = SampleRing::with_capacity(4);
        assert_eq!(r.push(&seq(0, 10)), 6);
        let mut out = Vec::new();
        r.copy_range(6, 10, &mut out).unwrap();
        assert_eq!(out, seq(6, 10));
    }
}
