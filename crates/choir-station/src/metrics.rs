//! Station observability: a counter snapshot covering the whole ingest →
//! detect → dispatch → decode path, serializable to JSON without serde.
//!
//! Every field except `queue_depth` is a monotone counter — the fuzz
//! harness asserts [`StationMetrics::monotone_since`] across arbitrary
//! hostile inputs, so any code path that decrements one is a bug by
//! construction. Wall-clock per *decode* stage is not duplicated here: the
//! decoder already bills its stages to [`choir_core::profile`], and the
//! station adds `ingest`/`detect` scopes to the same accounting.

/// Counters describing everything a [`crate::Station`] has processed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StationMetrics {
    /// IQ samples pushed into the station.
    pub samples_ingested: u64,
    /// Samples lost to ring overwrite before they could be consumed.
    pub samples_dropped: u64,
    /// Chunks pushed (arbitrary sizes — this counts calls, not bytes).
    pub chunks_ingested: u64,
    /// Symbol windows examined by the online detector / occupancy gate.
    pub windows_scanned: u64,
    /// Detector firings: free-running preamble confirmations admitted by
    /// the start-dedup policy, or scheduled slots whose occupancy gate
    /// saw energy.
    pub detector_triggers: u64,
    /// Free-running confirmations folded into an earlier admission by the
    /// start-dedup policy (same frame, duplicate hypothesis).
    pub detections_deduped: u64,
    /// Tracker hypotheses born (candidate frame alignments opened).
    pub hyp_born: u64,
    /// Tracker hypotheses confirmed as packet starts.
    pub hyp_confirmed: u64,
    /// Tracker hypotheses expired (support ran out / evicted) unconfirmed.
    pub hyp_expired: u64,
    /// Tracker hypotheses merged into a duplicate of the same bin.
    pub hyp_merged: u64,
    /// Triggers that decoded to nothing (`NoUsersFound`) — the numerator
    /// of [`StationMetrics::false_trigger_rate`].
    pub false_triggers: u64,
    /// Slot captures the station attempted to cut.
    pub slots_seen: u64,
    /// Scheduled slots gated out as silent (no decode attempted).
    pub slots_empty: u64,
    /// Slots that went through the decoder.
    pub slots_decoded: u64,
    /// Slots dropped by load shedding (queue overflow or ring overrun).
    pub slots_shed: u64,
    /// Decoded slots that returned a typed `DecodeError`.
    pub decode_errors: u64,
    /// Users produced across all decoded slots.
    pub users_decoded: u64,
    /// Users whose frame passed CRC.
    pub users_crc_ok: u64,
    /// Slots decoded in degraded mode (reduced SIC under pressure).
    pub degraded_decodes: u64,
    /// Captures currently queued for decode (gauge — not monotone).
    pub queue_depth: u64,
    /// High-water mark of `queue_depth`.
    pub max_queue_depth: u64,
}

impl StationMetrics {
    /// Detector firings that found no decodable user, as a fraction of all
    /// firings (0.0 when the detector never fired).
    pub fn false_trigger_rate(&self) -> f64 {
        if self.detector_triggers == 0 {
            return 0.0;
        }
        self.false_triggers as f64 / self.detector_triggers as f64
    }

    /// True when every monotone counter is ≥ its value in `prev`
    /// (`queue_depth` is a gauge and exempt). The fuzz harness checks this
    /// between every pair of snapshots.
    pub fn monotone_since(&self, prev: &StationMetrics) -> bool {
        self.samples_ingested >= prev.samples_ingested
            && self.samples_dropped >= prev.samples_dropped
            && self.chunks_ingested >= prev.chunks_ingested
            && self.windows_scanned >= prev.windows_scanned
            && self.detector_triggers >= prev.detector_triggers
            && self.detections_deduped >= prev.detections_deduped
            && self.hyp_born >= prev.hyp_born
            && self.hyp_confirmed >= prev.hyp_confirmed
            && self.hyp_expired >= prev.hyp_expired
            && self.hyp_merged >= prev.hyp_merged
            && self.false_triggers >= prev.false_triggers
            && self.slots_seen >= prev.slots_seen
            && self.slots_empty >= prev.slots_empty
            && self.slots_decoded >= prev.slots_decoded
            && self.slots_shed >= prev.slots_shed
            && self.decode_errors >= prev.decode_errors
            && self.users_decoded >= prev.users_decoded
            && self.users_crc_ok >= prev.users_crc_ok
            && self.degraded_decodes >= prev.degraded_decodes
            && self.max_queue_depth >= prev.max_queue_depth
    }

    /// Accounting identity: every slot the station saw is decoded, gated
    /// empty, shed, or still queued. Violations mean slots leaked.
    pub fn slots_accounted(&self) -> bool {
        self.slots_seen
            == self.slots_decoded + self.slots_empty + self.slots_shed + self.queue_depth
    }

    /// Tracker accounting identity for a *finished* stream (`finish`
    /// flushes the tracker, leaving no live hypotheses): every born
    /// hypothesis ended in exactly one terminal transition.
    pub fn hypotheses_accounted(&self) -> bool {
        self.hyp_born == self.hyp_confirmed + self.hyp_expired + self.hyp_merged
    }

    /// Records the current counters as an `Outcome`-level
    /// `metrics_snapshot` trace event (the station calls this once per
    /// `finish`, so every drained log ends with the final accounting).
    pub fn trace_snapshot(&self) {
        choir_trace::outcome(|| choir_trace::TraceEvent::MetricsSnapshot {
            json: self.to_json(),
        });
    }

    /// Hand-rolled JSON object (the workspace has no serde), one key per
    /// counter plus the derived false-trigger rate.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"samples_ingested\": {}, \"samples_dropped\": {}, ",
                "\"chunks_ingested\": {}, \"windows_scanned\": {}, ",
                "\"detector_triggers\": {}, \"detections_deduped\": {}, ",
                "\"hyp_born\": {}, \"hyp_confirmed\": {}, ",
                "\"hyp_expired\": {}, \"hyp_merged\": {}, ",
                "\"false_triggers\": {}, ",
                "\"false_trigger_rate\": {:.6}, ",
                "\"slots_seen\": {}, \"slots_empty\": {}, ",
                "\"slots_decoded\": {}, \"slots_shed\": {}, ",
                "\"decode_errors\": {}, \"users_decoded\": {}, ",
                "\"users_crc_ok\": {}, \"degraded_decodes\": {}, ",
                "\"queue_depth\": {}, \"max_queue_depth\": {}}}"
            ),
            self.samples_ingested,
            self.samples_dropped,
            self.chunks_ingested,
            self.windows_scanned,
            self.detector_triggers,
            self.detections_deduped,
            self.hyp_born,
            self.hyp_confirmed,
            self.hyp_expired,
            self.hyp_merged,
            self.false_triggers,
            self.false_trigger_rate(),
            self.slots_seen,
            self.slots_empty,
            self.slots_decoded,
            self.slots_shed,
            self.decode_errors,
            self.users_decoded,
            self.users_crc_ok,
            self.degraded_decodes,
            self.queue_depth,
            self.max_queue_depth,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_ignores_gauge() {
        let a = StationMetrics {
            slots_decoded: 3,
            queue_depth: 5,
            ..StationMetrics::default()
        };
        let mut b = a;
        b.queue_depth = 0; // gauge may fall
        b.slots_decoded = 4;
        assert!(b.monotone_since(&a));
        let mut c = b;
        c.slots_decoded = 2; // counter may not
        assert!(!c.monotone_since(&b));
    }

    #[test]
    fn accounting_identity() {
        let mut m = StationMetrics {
            slots_seen: 10,
            slots_decoded: 6,
            slots_empty: 2,
            slots_shed: 1,
            queue_depth: 1,
            ..StationMetrics::default()
        };
        assert!(m.slots_accounted());
        m.slots_shed = 0;
        assert!(!m.slots_accounted());
    }

    #[test]
    fn json_has_every_counter_and_balances() {
        let m = StationMetrics {
            detector_triggers: 4,
            false_triggers: 1,
            ..StationMetrics::default()
        };
        let j = m.to_json();
        for key in [
            "samples_ingested",
            "samples_dropped",
            "chunks_ingested",
            "windows_scanned",
            "detector_triggers",
            "detections_deduped",
            "hyp_born",
            "hyp_confirmed",
            "hyp_expired",
            "hyp_merged",
            "false_triggers",
            "false_trigger_rate",
            "slots_seen",
            "slots_empty",
            "slots_decoded",
            "slots_shed",
            "decode_errors",
            "users_decoded",
            "users_crc_ok",
            "degraded_decodes",
            "queue_depth",
            "max_queue_depth",
        ] {
            assert!(j.contains(&format!("\"{key}\"")), "missing {key} in {j}");
        }
        assert!(j.contains("0.250000"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn hypothesis_accounting_identity() {
        let mut m = StationMetrics {
            hyp_born: 5,
            hyp_confirmed: 2,
            hyp_expired: 2,
            hyp_merged: 1,
            ..StationMetrics::default()
        };
        assert!(m.hypotheses_accounted());
        m.hyp_merged = 0;
        assert!(!m.hypotheses_accounted());
    }

    #[test]
    fn false_trigger_rate_guards_zero() {
        let m = StationMetrics::default();
        assert_eq!(m.false_trigger_rate().to_bits(), 0.0f64.to_bits());
    }
}
