//! Streaming ↔ batch equivalence: the acceptance property of the station.
//!
//! The eight seeded golden scenarios (the same configurations pinned by
//! `choir-core/tests/golden_seeded.txt`) are concatenated into one
//! continuous IQ stream with random inter-slot silence, fed to the
//! station in random chunks of 1..4096 samples, and the decoded output is
//! required to be **bit-identical** — every float compared via `to_bits`
//! — to `decode_slots_with_pool` over the pre-cut captures, at 1 and at 4
//! worker threads. This holds because scheduled-mode capture cutting is
//! sample-exact and `try_decode` is a pure function of the capture.

use choir_channel::impairments::HardwareProfile;
use choir_channel::scenario::{CollisionScenario, ScenarioBuilder};
use choir_core::{ChoirDecoder, DecodedUser, SlotCapture};
use choir_dsp::complex::C64;
use choir_pool::ThreadPool;
use choir_station::{SlotSchedule, Station, StationConfig};
use lora_phy::params::PhyParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PAYLOAD_LEN: usize = 6;

fn params() -> PhyParams {
    PhyParams::default() // SF8, 125 kHz, CR4/8
}

fn profile(cfo_bins: f64, toff_symbols: f64) -> HardwareProfile {
    let bin_hz = 125e3 / 256.0;
    HardwareProfile {
        cfo_hz: cfo_bins * bin_hz,
        timing_offset_symbols: toff_symbols,
        phase: 1.0,
        cfo_jitter_hz: 0.0,
        timing_jitter_symbols: 0.0,
    }
}

/// The eight seeded scenarios from `choir-core/tests/parallel.rs`,
/// verbatim — the stream version of the golden workload.
fn seeded_scenarios() -> Vec<CollisionScenario> {
    type Scenario = (&'static [f64], &'static [(f64, f64)], u64);
    let configs: [Scenario; 8] = [
        (&[20.0, 17.0], &[(2.3, 0.1), (-7.6, 0.32)], 31),
        (&[19.0, 16.0], &[(6.4, 0.37), (-11.7, 0.43)], 32),
        (&[21.0, 15.0], &[(0.8, 0.05), (5.5, 0.21)], 33),
        (&[18.0, 18.0], &[(-3.2, 0.12), (9.1, 0.4)], 34),
        (
            &[20.0, 17.0, 14.0],
            &[(2.3, 0.1), (-7.6, 0.32), (12.4, 0.18)],
            35,
        ),
        (
            &[19.0, 18.0, 17.0],
            &[(4.4, 0.25), (-5.9, 0.07), (10.2, 0.33)],
            36,
        ),
        (&[22.0], &[(1.5, 0.2)], 37),
        (&[16.0, 16.0], &[(-9.3, 0.45), (7.7, 0.02)], 38),
    ];
    configs
        .iter()
        .map(|(snrs, profs, seed)| {
            ScenarioBuilder::new(params())
                .snrs_db(snrs)
                .payload_len(PAYLOAD_LEN)
                .profiles(profs.iter().map(|&(c, t)| profile(c, t)).collect())
                .seed(*seed)
                .build()
        })
        .collect()
}

/// Concatenates the scenarios into one stream with random silence gaps,
/// returning the stream and each slot's absolute boundary sample.
fn build_stream(scenarios: &[CollisionScenario], rng: &mut StdRng) -> (Vec<C64>, Vec<u64>) {
    let mut stream = Vec::new();
    let mut slot_starts = Vec::new();
    for s in scenarios {
        let gap = rng.gen_range(0..3000usize);
        stream.resize(stream.len() + gap, C64::ZERO);
        slot_starts.push((stream.len() + s.slot_start) as u64);
        stream.extend_from_slice(&s.samples);
    }
    // Trailing silence: end-of-stream must not matter for full captures.
    stream.resize(stream.len() + rng.gen_range(0..2000usize), C64::ZERO);
    (stream, slot_starts)
}

/// Splits the stream into random chunks of 1..4096 samples, with every
/// fifth chunk forced tiny so single-sample and sub-window deliveries are
/// always exercised alongside multi-slot ones.
fn chunked(stream: &[C64], rng: &mut StdRng) -> Vec<Vec<C64>> {
    let mut chunks = Vec::new();
    let mut at = 0;
    while at < stream.len() {
        let len = if chunks.len() % 5 == 0 {
            rng.gen_range(1..32usize)
        } else {
            rng.gen_range(32..4096usize)
        };
        let len = len.min(stream.len() - at);
        chunks.push(stream[at..at + len].to_vec());
        at += len;
    }
    chunks
}

/// Field-by-field bit-exact comparison, as in `choir-core/tests/parallel.rs`
/// (`DecodedUser` deliberately has no `PartialEq`; floats go via `to_bits`).
fn assert_users_identical(a: &[DecodedUser], b: &[DecodedUser], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: user count diverged");
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        let ctx = format!("{ctx}, user {k}");
        assert_eq!(
            x.user.offset_bins.to_bits(),
            y.user.offset_bins.to_bits(),
            "{ctx}: offset_bins"
        );
        assert_eq!(x.user.frac.to_bits(), y.user.frac.to_bits(), "{ctx}: frac");
        assert_eq!(x.user.mag.to_bits(), y.user.mag.to_bits(), "{ctx}: mag");
        assert_eq!(
            x.user.channel.re.to_bits(),
            y.user.channel.re.to_bits(),
            "{ctx}: channel.re"
        );
        assert_eq!(
            x.user.channel.im.to_bits(),
            y.user.channel.im.to_bits(),
            "{ctx}: channel.im"
        );
        assert_eq!(
            x.user.phase_slope.map(f64::to_bits),
            y.user.phase_slope.map(f64::to_bits),
            "{ctx}: phase_slope"
        );
        assert_eq!(
            x.user.timing_chips.to_bits(),
            y.user.timing_chips.to_bits(),
            "{ctx}: timing_chips"
        );
        assert_eq!(x.user.support, y.user.support, "{ctx}: support");
        assert_eq!(x.symbols, y.symbols, "{ctx}: symbols");
        assert_eq!(x.sync_errors, y.sync_errors, "{ctx}: sync_errors");
        assert_eq!(x.erasures, y.erasures, "{ctx}: erasures");
        assert_eq!(x.frame, y.frame, "{ctx}: frame");
        assert_eq!(x.frame_error, y.frame_error, "{ctx}: frame_error");
    }
}

#[test]
fn streaming_matches_batch_bit_identically() {
    let scenarios = seeded_scenarios();
    let batch_slots: Vec<SlotCapture> = scenarios
        .iter()
        .map(|s| SlotCapture::known_len(&s.params, s.samples.clone(), s.slot_start, PAYLOAD_LEN))
        .collect();
    let dec = ChoirDecoder::new(params());

    for (threads, chunk_seed) in [(1usize, 0xA11CEu64), (4, 0xB0B5)] {
        let pool = ThreadPool::with_threads(threads);
        let batch = dec.decode_slots_with_pool(&batch_slots, pool);
        assert!(
            batch.iter().any(|r| r.ok_users().count() >= 2),
            "workload too easy to be a meaningful equivalence probe"
        );

        let mut rng = StdRng::seed_from_u64(chunk_seed);
        let (stream, slot_starts) = build_stream(&scenarios, &mut rng);
        let chunks = chunked(&stream, &mut rng);
        assert!(
            chunks.iter().any(|c| c.len() < 32) && chunks.iter().any(|c| c.len() > 2048),
            "chunking must actually exercise small and large chunks"
        );

        let mut cfg = StationConfig::known_len(params(), PAYLOAD_LEN);
        // Equivalence is about cutting, not shedding: make overload
        // impossible so every slot flows through the nominal path.
        cfg.max_in_flight = 64;
        cfg.pressure_watermark = 64;
        let station =
            Station::new(cfg, SlotSchedule::Explicit(slot_starts.clone())).with_pool(pool);
        let report = station.run(chunks);

        let ctx = format!("threads={threads}");
        assert!(report.shed.is_empty(), "{ctx}: nominal stream shed slots");
        assert_eq!(report.metrics.samples_dropped, 0, "{ctx}: ring overflowed");
        assert_eq!(report.slots.len(), batch.len(), "{ctx}: slot count");
        assert!(report.metrics.slots_accounted(), "{ctx}: slot accounting");
        for ((slot, batch_result), &start) in report.slots.iter().zip(&batch).zip(&slot_starts) {
            let ctx = format!("{ctx}, slot at {start}");
            assert_eq!(slot.slot_start, start, "{ctx}: boundary");
            assert!(!slot.degraded, "{ctx}: decoded degraded under no load");
            assert_eq!(slot.result.error, batch_result.error, "{ctx}: error status");
            assert_users_identical(&slot.result.users, &batch_result.users, &ctx);
        }
    }
}
