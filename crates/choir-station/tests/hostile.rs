//! Adversarial input suite: the station must survive hostile streams —
//! truncation, silence, saturation, non-finite garbage, pathological
//! chunking — without panicking (release) and with the debug sanitizers
//! firing only where the non-finite policy says they should.

use choir_channel::impairments::HardwareProfile;
use choir_channel::scenario::{CollisionScenario, ScenarioBuilder};
use choir_core::error::DecodeError;
use choir_core::ChoirDecoder;
use choir_dsp::complex::{c64, C64};
use choir_pool::ThreadPool;
use choir_station::{SlotSchedule, Station, StationConfig};
use lora_phy::params::PhyParams;

const PAYLOAD_LEN: usize = 6;

fn params() -> PhyParams {
    PhyParams::default() // SF8: n = 256, slot boundary at 512
}

fn profile(cfo_bins: f64, toff_symbols: f64) -> HardwareProfile {
    let bin_hz = 125e3 / 256.0;
    HardwareProfile {
        cfo_hz: cfo_bins * bin_hz,
        timing_offset_symbols: toff_symbols,
        phase: 1.0,
        cfo_jitter_hz: 0.0,
        timing_jitter_symbols: 0.0,
    }
}

fn two_user_scenario(seed: u64) -> CollisionScenario {
    ScenarioBuilder::new(params())
        .snrs_db(&[20.0, 17.0])
        .payload_len(PAYLOAD_LEN)
        .profiles(vec![profile(2.3, 0.1), profile(-7.6, 0.32)])
        .seed(seed)
        .build()
}

fn station(cfg: StationConfig, slot_starts: Vec<u64>) -> Station {
    Station::new(cfg, SlotSchedule::Explicit(slot_starts)).with_pool(ThreadPool::sequential())
}

/// A stream that ends mid-slot must surface as a decoded slot carrying a
/// typed `TruncatedSlot` error — never a panic, never a hang.
#[test]
fn truncated_final_chunk_is_a_typed_error() {
    let s = two_user_scenario(41);
    // Cut deep into the data symbols (well past the 4-symbol tail slack).
    let cut = s.samples.len() - s.samples.len() / 3;
    let cfg = StationConfig::known_len(s.params, PAYLOAD_LEN);
    let mut st = station(cfg, vec![s.slot_start as u64]);
    st.push_chunk(&s.samples[..cut]);
    let report = st.finish();
    assert_eq!(report.slots.len(), 1);
    assert!(
        matches!(
            report.slots[0].result.error,
            Some(DecodeError::TruncatedSlot { .. })
        ),
        "expected TruncatedSlot, got {:?}",
        report.slots[0].result.error
    );
    assert_eq!(report.metrics.decode_errors, 1);
    assert!(report.metrics.slots_accounted());
    assert!(report.shed.is_empty());
}

/// All-silence input: every scheduled slot is gated out by the occupancy
/// check — zero decodes, zero triggers, zero shed.
#[test]
fn all_zero_stream_is_gated_empty() {
    let cfg = StationConfig::known_len(params(), PAYLOAD_LEN);
    let mut st = Station::new(
        cfg,
        SlotSchedule::Periodic {
            first: 512,
            period: 4096,
        },
    )
    .with_pool(ThreadPool::sequential());
    for _ in 0..8 {
        st.push_chunk(&vec![C64::ZERO; 2048]);
        st.service();
    }
    let report = st.finish();
    assert!(report.metrics.slots_seen >= 3, "{:?}", report.metrics);
    assert_eq!(report.metrics.slots_empty, report.metrics.slots_seen);
    assert_eq!(report.metrics.slots_decoded, 0);
    assert_eq!(report.metrics.detector_triggers, 0);
    assert!(report.shed.is_empty());
    assert!(report.metrics.slots_accounted());
}

/// DC-saturated input (an overdriven front end) with the occupancy gate
/// forced open: the decoder may fail or find phantom components, but it
/// must return typed results with zero CRC passes — and never panic.
#[test]
fn dc_saturated_stream_never_panics() {
    let mut cfg = StationConfig::known_len(params(), PAYLOAD_LEN);
    cfg.detect_threshold = 0.0; // force every slot through the decoder
    let period = cfg.capture_len() as u64;
    let mut st = Station::new(cfg, SlotSchedule::Periodic { first: 512, period })
        .with_pool(ThreadPool::sequential());
    for _ in 0..6 {
        st.push_chunk(&vec![c64(1.0e3, -1.0e3); 4096]);
        st.service();
    }
    let report = st.finish();
    assert!(report.metrics.slots_decoded >= 2, "{:?}", report.metrics);
    assert_eq!(report.metrics.users_crc_ok, 0, "CRC passed on DC garbage");
    assert!(report.metrics.slots_accounted());
}

/// Builds a valid stream, then injects NaN/Inf into the data region (the
/// preamble stays clean so the occupancy gate passes and the corruption
/// reaches the decode stage, as a real mid-packet glitch would).
fn corrupted_stream() -> (CollisionScenario, Vec<C64>) {
    let s = two_user_scenario(42);
    let n = s.params.samples_per_symbol();
    let mut stream = s.samples.clone();
    let data_at = s.slot_start + (s.params.preamble_len + 3) * n;
    stream[data_at] = c64(f64::NAN, 0.0);
    stream[data_at + n] = c64(f64::INFINITY, -1.0);
    (s, stream)
}

/// With `reject_non_finite` set, corrupt captures become a typed
/// `NonFiniteInput` error in **every** build profile — no panic, no
/// silent garbage decode.
#[test]
fn non_finite_rejected_by_policy_in_all_profiles() {
    let (s, stream) = corrupted_stream();
    let mut cfg = StationConfig::known_len(s.params, PAYLOAD_LEN);
    cfg.reject_non_finite = true;
    let mut st = station(cfg, vec![s.slot_start as u64]);
    st.push_chunk(&stream);
    let report = st.finish();
    assert_eq!(report.slots.len(), 1);
    assert_eq!(
        report.slots[0].result.error,
        Some(DecodeError::NonFiniteInput { nan: 1, inf: 1 })
    );
    assert_eq!(report.metrics.decode_errors, 1);
    assert!(report.metrics.slots_accounted());
}

/// Debug builds without the policy flag deliberately let the corruption
/// reach the decoder so `choir_dsp::checks` fires at the consuming stage —
/// the loud failure mode the sanitizers exist for.
#[test]
#[cfg(debug_assertions)]
fn non_finite_trips_debug_sanitizer_without_policy() {
    let (s, stream) = corrupted_stream();
    let cfg = StationConfig::known_len(s.params, PAYLOAD_LEN);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut st = station(cfg, vec![s.slot_start as u64]);
        st.push_chunk(&stream);
        st.finish()
    }));
    let payload = outcome.expect_err("debug sanitizer should have tripped");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("discover_users") && msg.contains("NaN"),
        "sanitizer message should name the consuming stage: {msg}"
    );
}

/// Release builds without the policy flag must still reject (the
/// sanitizer is compiled out there): typed error, never a panic.
#[test]
#[cfg(not(debug_assertions))]
fn non_finite_is_typed_error_in_release_without_policy() {
    let (s, stream) = corrupted_stream();
    let cfg = StationConfig::known_len(s.params, PAYLOAD_LEN);
    let mut st = station(cfg, vec![s.slot_start as u64]);
    st.push_chunk(&stream);
    let report = st.finish();
    assert_eq!(report.slots.len(), 1);
    assert_eq!(
        report.slots[0].result.error,
        Some(DecodeError::NonFiniteInput { nan: 1, inf: 1 })
    );
}

/// A preamble delivered across three chunk boundaries must reassemble to
/// the exact same capture — station output bit-identical to the batch
/// decode of the uncut buffer.
#[test]
fn preamble_split_across_three_chunk_boundaries() {
    let s = two_user_scenario(43);
    let n = s.params.samples_per_symbol();
    // Preamble occupies [512, 512 + 8·256): split inside it three times.
    let cuts = [
        s.slot_start + n / 2,
        s.slot_start + 2 * n + 17,
        s.slot_start + 5 * n + 255,
    ];
    let cfg = StationConfig::known_len(s.params, PAYLOAD_LEN);
    let mut st = station(cfg, vec![s.slot_start as u64]);
    let mut at = 0;
    for &cut in &cuts {
        st.push_chunk(&s.samples[at..cut]);
        st.service();
        at = cut;
    }
    st.push_chunk(&s.samples[at..]);
    let report = st.finish();
    assert_eq!(report.slots.len(), 1);
    assert!(report.shed.is_empty());

    let dec = ChoirDecoder::new(s.params);
    let nds = lora_phy::frame::frame_symbol_count(&s.params, PAYLOAD_LEN);
    let batch = dec
        .try_decode(&s.samples, s.slot_start, nds)
        .expect("batch decode of the clean scenario");
    let streamed = &report.slots[0].result.users;
    assert_eq!(streamed.len(), batch.len());
    for (a, b) in streamed.iter().zip(&batch) {
        assert_eq!(a.user.offset_bins.to_bits(), b.user.offset_bins.to_bits());
        assert_eq!(a.symbols, b.symbols);
        assert_eq!(a.frame, b.frame);
    }
    assert!(
        batch
            .iter()
            .any(|u| u.frame.as_ref().is_some_and(|f| f.crc_ok)),
        "scenario should decode cleanly"
    );
}

/// Free-running mode: no beacon, packet at an arbitrary unaligned offset,
/// hostile chunking — the online detector must find it and the decoder
/// must still recover a CRC-clean user (robustness, not bit-identity:
/// the detector resolves the boundary to one symbol window).
#[test]
fn free_running_detects_unaligned_packet() {
    let s = two_user_scenario(44);
    let lead_silence = 1000; // deliberately not a multiple of n = 256
    let mut stream = vec![C64::ZERO; lead_silence];
    stream.extend_from_slice(&s.samples);
    stream.extend(std::iter::repeat_n(C64::ZERO, 600));

    let cfg = StationConfig::known_len(s.params, PAYLOAD_LEN);
    let mut st = Station::new(cfg, SlotSchedule::FreeRunning).with_pool(ThreadPool::sequential());
    let mut at = 0;
    let mut len = 1usize;
    while at < stream.len() {
        let take = len.min(stream.len() - at);
        st.push_chunk(&stream[at..at + take]);
        st.service();
        at += take;
        len = (len * 3 + 7) % 911 + 1; // scrambled, includes tiny chunks
    }
    let report = st.finish();
    assert_eq!(report.metrics.detector_triggers, 1, "{:?}", report.metrics);
    assert_eq!(report.slots.len(), 1);
    assert!(report.shed.is_empty());
    assert!(
        report.slots[0].result.ok_users().count() >= 1,
        "free-running decode found no CRC-clean user: {:?}",
        report.slots[0].result.error
    );
    assert!((report.metrics.false_trigger_rate() - 0.0).abs() < f64::EPSILON);
    assert!(report.metrics.slots_accounted());
}

/// Overload: a burst of back-to-back slots with a tiny in-flight budget
/// and no servicing must shed oldest-first, loudly, without blocking.
#[test]
fn overload_sheds_oldest_with_counted_events() {
    let s = two_user_scenario(45);
    let mut cfg = StationConfig::known_len(s.params, PAYLOAD_LEN);
    cfg.max_in_flight = 2;
    let mut starts = Vec::new();
    let mut stream = Vec::new();
    for _ in 0..5 {
        starts.push((stream.len() + s.slot_start) as u64);
        stream.extend_from_slice(&s.samples);
    }
    let mut st = station(cfg, starts.clone());
    st.push_chunk(&stream); // one giant chunk, no service() until the end
    let report = st.finish();
    assert_eq!(report.metrics.slots_seen, 5);
    assert_eq!(report.metrics.slots_shed, 3, "{:?}", report.metrics);
    // Drop-oldest: the shed slots are the three earliest boundaries.
    let shed_starts: Vec<u64> = report.shed.iter().map(|e| e.slot_start).collect();
    assert_eq!(shed_starts, starts[..3]);
    assert_eq!(report.slots.len(), 2);
    assert!(report.metrics.slots_accounted());
}
