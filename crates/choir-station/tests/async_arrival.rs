//! Asynchronous-arrival scenario battery: the acceptance suite for the
//! station's unslotted (free-running) mode and the multi-hypothesis
//! preamble tracker behind it.
//!
//! Nine seeded scenarios cover the arrival geometries slotted tests
//! cannot express: frames overlapping by 25/50/75% of their on-air
//! length, staggered near-far pairs with a 20 dB power gap (strong
//! first and weak first), zero-gap back-to-back frames, a frame that
//! starts mid-way through the first delivered chunk, and a
//! sub-threshold preamble that only confirms through multi-window score
//! accumulation. Each scenario is rendered to a textual capture —
//! confirmed slot starts, per-user frequency/timing estimates as f64
//! bit patterns, demodulated symbols, CRC verdicts, payload bytes, and
//! the tracker's lifecycle counters — and the concatenation is pinned
//! byte-for-byte against `tests/async_golden.txt`.
//!
//! On top of the golden pin, every scenario must decode bit-identically
//! at 1 and at 4 worker threads (capture cutting happens on the ingest
//! thread; decode is a pure function of the capture), and under every
//! DSP backend `choir_dsp::backend::available()` reports (the 0-ULP
//! policy).
//!
//! Regenerate the golden after an intentional decoder change with:
//!
//! ```text
//! CHOIR_BLESS=1 cargo test -p choir-station --test async_arrival golden_battery
//! ```

use choir_channel::AsyncScenarioBuilder;
use choir_core::DecodedUser;
use choir_dsp::backend;
use choir_pool::ThreadPool;
use choir_station::{SlotSchedule, Station, StationConfig, StationReport};
use lora_phy::frame::frame_symbol_count;
use lora_phy::params::PhyParams;
use std::fmt::Write as _;

/// On-air length of one battery frame: 9-byte payload at SF8 CR4/8 is
/// 8 preamble + 2 sync + 32 data = 42 symbols of 256 samples.
const FRAME: u64 = 42 * 256;
const PAYLOAD_LEN: usize = 9;

fn params() -> PhyParams {
    PhyParams::default() // SF8, 125 kHz, CR4/8
}

/// One battery scenario: seeded arrivals, detector threshold, and the
/// fixed chunk size the stream is delivered in.
struct Spec {
    name: &'static str,
    /// (absolute start sample, per-sample SNR dB, payload)
    arrivals: &'static [(u64, f64, &'static [u8])],
    seed: u64,
    threshold: f64,
    chunk: usize,
}

/// The pinned battery. Overlap offsets are deliberately NOT multiples
/// of the symbol period: a sub-symbol misalignment dechirps the
/// interfering frame into two reduced-coherence straddle peaks
/// (~-6 dB each), which is what gives both frames of an overlapping
/// pair a mutual capture margin. Symbol-aligned equal-power overlap
/// keeps the interferer fully coherent and neither frame survives —
/// real radios are never sample-aligned, so the misaligned geometry is
/// the physically representative one.
const SPECS: &[Spec] = &[
    Spec {
        name: "overlap_25pct",
        arrivals: &[(512, 26.0, b"payload A"), (512 + 8064, 22.0, b"payload B")],
        seed: 11,
        threshold: 40.0,
        chunk: 1000,
    },
    Spec {
        // 50.9% overlap: offset FRAME/2 + 100 samples. The exact-half
        // offset (+128 = half a symbol) is a knife edge where the
        // second frame's leading straddle window can fall below birth
        // threshold under interference; +100 keeps the geometry
        // representative without sitting on the degenerate point.
        name: "overlap_50pct",
        arrivals: &[(512, 24.0, b"payload A"), (512 + 5476, 27.0, b"payload B")],
        seed: 11,
        threshold: 40.0,
        chunk: 777,
    },
    Spec {
        name: "overlap_75pct",
        arrivals: &[(512, 26.0, b"payload A"), (512 + 2688, 22.0, b"payload B")],
        seed: 11,
        threshold: 40.0,
        chunk: 256,
    },
    Spec {
        // Second frame starts the sample the first one ends.
        name: "zero_gap_back_to_back",
        arrivals: &[(512, 20.0, b"payload A"), (512 + FRAME, 25.0, b"payload B")],
        seed: 11,
        threshold: 40.0,
        chunk: 4096,
    },
    Spec {
        // 20 dB near-far, strong frame first, 1.5-symbol tail overlap:
        // the weak preamble must be tracked under the strong tail and
        // the capture lead-in must not re-ingest the strong frame.
        name: "near_far_strong_first",
        arrivals: &[(512, 30.0, b"payload A"), (512 + 10368, 10.0, b"payload B")],
        seed: 11,
        threshold: 40.0,
        chunk: 1000,
    },
    Spec {
        name: "near_far_weak_first",
        arrivals: &[(512, 10.0, b"payload A"), (512 + 10368, 30.0, b"payload B")],
        seed: 11,
        threshold: 40.0,
        chunk: 1000,
    },
    Spec {
        // Disjoint frames separated by a two-symbol gap, 20 dB apart.
        name: "near_far_two_symbol_gap",
        arrivals: &[(512, 30.0, b"payload A"), (512 + 11264, 10.0, b"payload B")],
        seed: 11,
        threshold: 40.0,
        chunk: 513,
    },
    Spec {
        // Frame starts 700 samples into a 1000-sample first chunk, on
        // no window boundary: birth, confirmation, and capture all
        // cross the very first chunk seam.
        name: "mid_first_chunk",
        arrivals: &[(700, 15.0, b"payload A")],
        seed: 11,
        threshold: 40.0,
        chunk: 1000,
    },
    Spec {
        // 2.5 dB per-sample SNR against a threshold of 200: no single
        // window clears the bar; only the accumulated run score
        // confirms the hypothesis.
        name: "sub_threshold_accumulation",
        arrivals: &[(512, 2.5, b"payload A")],
        seed: 11,
        threshold: 200.0,
        chunk: 1000,
    },
];

/// Runs one scenario through a free-running station and returns the
/// report.
fn run_spec(spec: &Spec, pool: ThreadPool) -> StationReport {
    let p = params();
    let mut b = AsyncScenarioBuilder::new(p).seed(spec.seed).tail_symbols(6);
    for &(start, snr, payload) in spec.arrivals {
        assert_eq!(
            payload.len(),
            PAYLOAD_LEN,
            "{}: battery payload length",
            spec.name
        );
        b = b.arrival(start, snr, payload);
    }
    let s = b.build();
    assert_eq!(
        s.arrivals[0].len_samples(&s.params),
        FRAME,
        "{}: frame length drifted from the pinned geometry",
        spec.name
    );
    let mut cfg = StationConfig::new(p, frame_symbol_count(&p, PAYLOAD_LEN));
    cfg.detect_threshold = spec.threshold;
    let station = Station::new(cfg, SlotSchedule::FreeRunning).with_pool(pool);
    station.run(s.samples.chunks(spec.chunk).map(|c| c.to_vec()))
}

/// Renders a scenario report in the golden-capture format. Every float
/// is written as its IEEE-754 bit pattern, so the pin is bit-exact.
fn render(name: &str, report: &StationReport) -> String {
    let mut out = String::new();
    // Writing to a String is infallible.
    let m = &report.metrics;
    let _ = writeln!(out, "scenario {name}");
    let _ = writeln!(
        out,
        "  metrics triggers={} deduped={} born={} confirmed={} expired={} merged={}",
        m.detector_triggers,
        m.detections_deduped,
        m.hyp_born,
        m.hyp_confirmed,
        m.hyp_expired,
        m.hyp_merged
    );
    for slot in &report.slots {
        let r = &slot.result;
        let _ = writeln!(
            out,
            "  slot @{}: {} users, error={:?}",
            slot.slot_start,
            r.users.len(),
            r.error
        );
        for (j, u) in r.users.iter().enumerate() {
            let _ = writeln!(
                out,
                "    u{j} offset={:#018x} frac={:#018x} timing={:#018x}",
                u.user.offset_bins.to_bits(),
                u.user.frac.to_bits(),
                u.user.timing_chips.to_bits()
            );
            let _ = writeln!(out, "    u{j} symbols={:?}", u.symbols);
            match &u.frame {
                Some(f) => {
                    let _ = writeln!(out, "    u{j} crc_ok={} payload={:?}", f.crc_ok, f.payload);
                }
                None => {
                    let _ = writeln!(out, "    u{j} frame=None err={:?}", u.frame_error);
                }
            }
        }
    }
    out
}

/// Renders the whole battery single-threaded — the golden workload.
fn render_battery() -> String {
    let mut all = String::new();
    for spec in SPECS {
        let report = run_spec(spec, ThreadPool::sequential());
        all.push_str(&render(spec.name, &report));
    }
    all
}

/// Every arrival of every scenario decodes: the payload comes back
/// byte-exact with a passing CRC in its own slot, slots appear in
/// arrival order, and nothing is shed. These semantic floors hold
/// independently of the golden file, so a bad bless cannot silently
/// pin a regression.
#[test]
fn every_arrival_decodes_with_crc() {
    for spec in SPECS {
        let report = run_spec(spec, ThreadPool::sequential());
        assert!(report.shed.is_empty(), "{}: shed slots", spec.name);
        assert_eq!(
            report.slots.len(),
            spec.arrivals.len(),
            "{}: one confirmed slot per arrival",
            spec.name
        );
        for (slot, &(start, _, payload)) in report.slots.iter().zip(spec.arrivals) {
            let ctx = format!("{}, arrival at {start}", spec.name);
            assert_eq!(slot.result.error, None, "{ctx}: slot error");
            let decoded: Vec<&DecodedUser> = slot
                .result
                .users
                .iter()
                .filter(|u| u.frame.as_ref().is_some_and(|f| f.payload == payload))
                .collect();
            assert_eq!(
                decoded.len(),
                1,
                "{ctx}: exactly one user carries the payload"
            );
            assert!(decoded[0].payload_ok(), "{ctx}: CRC");
        }
    }
}

/// The acceptance criterion called out by name: at 50% overlap, BOTH
/// payloads decode.
#[test]
fn fifty_percent_overlap_decodes_both_payloads() {
    let spec = SPECS.iter().find(|s| s.name == "overlap_50pct").unwrap();
    let report = run_spec(spec, ThreadPool::sequential());
    let payloads: Vec<Vec<u8>> = report
        .slots
        .iter()
        .flat_map(|s| s.result.users.iter())
        .filter(|u| u.payload_ok())
        .filter_map(|u| u.frame.as_ref().map(|f| f.payload.clone()))
        .collect();
    assert!(payloads.iter().any(|p| p == b"payload A"), "payload A lost");
    assert!(payloads.iter().any(|p| p == b"payload B"), "payload B lost");
}

/// The sub-threshold scenario really exercises accumulation: the
/// confirmation must exist even though no single window score reaches
/// the detector threshold (2.5 dB SNR yields window scores far below
/// 200), and the frame still decodes.
#[test]
fn sub_threshold_confirms_by_accumulation_only() {
    let spec = SPECS
        .iter()
        .find(|s| s.name == "sub_threshold_accumulation")
        .unwrap();
    let report = run_spec(spec, ThreadPool::sequential());
    assert_eq!(report.metrics.hyp_confirmed, 1, "accumulated confirmation");
    assert_eq!(report.slots.len(), 1);
    assert!(report.slots[0].result.users.iter().any(|u| u.payload_ok()));
}

/// The battery reproduces `tests/async_golden.txt` byte for byte.
#[test]
fn golden_battery_pinned() {
    const GOLDEN: &str = include_str!("async_golden.txt");
    let rendered = render_battery();
    if std::env::var_os("CHOIR_BLESS").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/async_golden.txt");
        std::fs::write(path, &rendered).expect("write blessed golden");
        eprintln!("blessed {path}");
        return;
    }
    assert_eq!(
        rendered.trim_end(),
        GOLDEN.trim_end(),
        "async battery diverged from the golden capture; if the change \
         is intentional, re-bless with CHOIR_BLESS=1"
    );
}

/// Field-by-field bit-exact comparison (`DecodedUser` deliberately has
/// no `PartialEq`; floats go via `to_bits`), as in `equivalence.rs`.
fn assert_users_identical(a: &[DecodedUser], b: &[DecodedUser], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: user count diverged");
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        let ctx = format!("{ctx}, user {k}");
        assert_eq!(
            x.user.offset_bins.to_bits(),
            y.user.offset_bins.to_bits(),
            "{ctx}: offset_bins"
        );
        assert_eq!(x.user.frac.to_bits(), y.user.frac.to_bits(), "{ctx}: frac");
        assert_eq!(x.user.mag.to_bits(), y.user.mag.to_bits(), "{ctx}: mag");
        assert_eq!(
            x.user.channel.re.to_bits(),
            y.user.channel.re.to_bits(),
            "{ctx}: channel.re"
        );
        assert_eq!(
            x.user.channel.im.to_bits(),
            y.user.channel.im.to_bits(),
            "{ctx}: channel.im"
        );
        assert_eq!(
            x.user.phase_slope.map(f64::to_bits),
            y.user.phase_slope.map(f64::to_bits),
            "{ctx}: phase_slope"
        );
        assert_eq!(
            x.user.timing_chips.to_bits(),
            y.user.timing_chips.to_bits(),
            "{ctx}: timing_chips"
        );
        assert_eq!(x.user.support, y.user.support, "{ctx}: support");
        assert_eq!(x.symbols, y.symbols, "{ctx}: symbols");
        assert_eq!(x.sync_errors, y.sync_errors, "{ctx}: sync_errors");
        assert_eq!(x.erasures, y.erasures, "{ctx}: erasures");
        assert_eq!(x.frame, y.frame, "{ctx}: frame");
        assert_eq!(x.frame_error, y.frame_error, "{ctx}: frame_error");
    }
}

/// Every scenario decodes bit-identically at 1 and at 4 worker
/// threads: detection and capture cutting happen on the ingest thread,
/// and decode is a pure function of the cut capture, so the pool size
/// must be unobservable in the output.
#[test]
fn thread_count_is_unobservable() {
    for spec in SPECS {
        let one = run_spec(spec, ThreadPool::with_threads(1));
        let four = run_spec(spec, ThreadPool::with_threads(4));
        let ctx = spec.name.to_string();
        assert_eq!(one.slots.len(), four.slots.len(), "{ctx}: slot count");
        for (a, b) in one.slots.iter().zip(&four.slots) {
            let ctx = format!("{ctx}, slot at {}", a.slot_start);
            assert_eq!(a.slot_start, b.slot_start, "{ctx}: boundary");
            assert_eq!(a.result.error, b.result.error, "{ctx}: error status");
            assert_users_identical(&a.result.users, &b.result.users, &ctx);
        }
    }
}

/// The battery reproduces the golden capture under every DSP backend
/// the host offers (scalar oracle, portable, and any vector ISA) — the
/// 0-ULP policy extends to the unslotted path. Each backend runs on a
/// fresh thread so per-thread caches cannot carry state across runs.
#[test]
fn golden_battery_identical_across_all_backends() {
    const GOLDEN: &str = include_str!("async_golden.txt");
    let kinds = backend::available();
    assert!(
        kinds.len() >= 2,
        "expected at least the scalar oracle and the portable fallback"
    );
    for kind in kinds {
        let rendered = std::thread::spawn(move || {
            backend::force(kind);
            render_battery()
        })
        .join();
        backend::reset();
        let rendered = rendered.expect("battery thread panicked");
        assert_eq!(
            rendered.trim_end(),
            GOLDEN.trim_end(),
            "async battery diverged under the {} backend",
            kind.name()
        );
    }
}
