//! Seeded fuzz battery: random byte-mangling of valid IQ streams pushed
//! through the full station pipeline. The properties are crash-freedom
//! and observability sanity — every metrics counter is monotone across
//! snapshots, the slot accounting identity holds at the end, and no
//! sample is silently un-counted. 256 cases; a failing case prints its
//! `CHOIR_FUZZ_SEED=` line for single-case replay (see
//! `proptest::fuzz::run_cases`).

use choir_channel::impairments::HardwareProfile;
use choir_channel::scenario::ScenarioBuilder;
use choir_dsp::complex::{c64, C64};
use choir_pool::ThreadPool;
use choir_station::{SlotSchedule, Station, StationConfig, StationMetrics};
use lora_phy::params::{PhyParams, SpreadingFactor};
use proptest::fuzz;
use rand::rngs::StdRng;
use rand::Rng;

const PAYLOAD_LEN: usize = 4;

/// SF7 keeps each decode cheap enough for 256 full-pipeline cases.
fn params() -> PhyParams {
    PhyParams {
        sf: SpreadingFactor::Sf7,
        ..PhyParams::default()
    }
}

fn profile(cfo_bins: f64, toff_symbols: f64) -> HardwareProfile {
    let bin_hz = 125e3 / 128.0;
    HardwareProfile {
        cfo_hz: cfo_bins * bin_hz,
        timing_offset_symbols: toff_symbols,
        phase: 1.0,
        cfo_jitter_hz: 0.0,
        timing_jitter_symbols: 0.0,
    }
}

/// A valid two-slot stream plus its slot boundaries — the clean substrate
/// every case mangles.
fn base_stream() -> (Vec<C64>, Vec<u64>) {
    let mut stream = Vec::new();
    let mut starts = Vec::new();
    for (seed, gap) in [(91u64, 700usize), (92, 333)] {
        let s = ScenarioBuilder::new(params())
            .snrs_db(&[20.0, 17.0])
            .payload_len(PAYLOAD_LEN)
            .profiles(vec![profile(1.8, 0.12), profile(-5.4, 0.31)])
            .seed(seed)
            .build();
        stream.resize(stream.len() + gap, C64::ZERO);
        starts.push((stream.len() + s.slot_start) as u64);
        stream.extend_from_slice(&s.samples);
    }
    (stream, starts)
}

/// Applies 1..=6 random mangling operations: f64 bit-flips (which can
/// produce NaN/Inf — the station's `reject_non_finite` policy must absorb
/// them), zeroed ranges, truncation, and duplicated spans.
fn mangle(stream: &mut Vec<C64>, rng: &mut StdRng) {
    let ops = rng.gen_range(1..=6u32);
    for _ in 0..ops {
        if stream.is_empty() {
            return;
        }
        match rng.gen_range(0..4u32) {
            0 => {
                // Bit-flip one component of one sample.
                let i = rng.gen_range(0..stream.len());
                let mask = 1u64 << rng.gen_range(0..64u32);
                let z = stream[i];
                stream[i] = if rng.gen::<bool>() {
                    c64(f64::from_bits(z.re.to_bits() ^ mask), z.im)
                } else {
                    c64(z.re, f64::from_bits(z.im.to_bits() ^ mask))
                };
            }
            1 => {
                // Zero a range (dropped AGC, squelch glitch).
                let lo = rng.gen_range(0..stream.len());
                let len = rng.gen_range(1..512usize).min(stream.len() - lo);
                for z in &mut stream[lo..lo + len] {
                    *z = C64::ZERO;
                }
            }
            2 => {
                // Truncate the tail.
                let keep = rng.gen_range(1..=stream.len());
                stream.truncate(keep);
            }
            _ => {
                // Duplicate a span in place (stuck DMA buffer).
                let lo = rng.gen_range(0..stream.len());
                let len = rng.gen_range(1..256usize).min(stream.len() - lo);
                let span: Vec<C64> = stream[lo..lo + len].to_vec();
                let at = rng.gen_range(0..stream.len() - len + 1);
                stream[at..at + len].copy_from_slice(&span);
            }
        }
    }
}

#[test]
fn station_survives_mangled_streams() {
    let (clean, starts) = base_stream();
    fuzz::run_cases("station_fuzz", 256, |_seed, rng| {
        let mut stream = clean.clone();
        mangle(&mut stream, rng);

        let mut cfg = StationConfig::known_len(params(), PAYLOAD_LEN);
        // Mangling injects NaN/Inf; the typed-rejection policy must hold
        // the line in every build profile (debug would otherwise trip the
        // decoder's sanitizer by design).
        cfg.reject_non_finite = true;
        // Shrink the runtime's budgets sometimes so overload and ring
        // overrun paths get fuzzed too, not just the happy path.
        cfg.max_in_flight = rng.gen_range(1..=8usize);
        cfg.pressure_watermark = rng.gen_range(1..=4usize);
        if rng.gen::<bool>() {
            cfg.ring_capacity = cfg.capture_len() * rng.gen_range(1..=3usize);
        }
        let schedule = if rng.gen_range(0..4u32) == 0 {
            SlotSchedule::FreeRunning
        } else {
            SlotSchedule::Explicit(starts.clone())
        };
        let mut st = Station::new(cfg, schedule).with_pool(ThreadPool::sequential());

        let mut pushed = 0u64;
        let mut prev = StationMetrics::default();
        let mut at = 0;
        while at < stream.len() {
            let len = rng.gen_range(1..2048usize).min(stream.len() - at);
            st.push_chunk(&stream[at..at + len]);
            pushed += len as u64;
            at += len;
            if rng.gen::<bool>() {
                st.service();
            }
            let now = *st.metrics();
            assert!(
                now.monotone_since(&prev),
                "counters went backwards: {prev:?} → {now:?}"
            );
            prev = now;
        }
        let report = st.finish();
        assert!(
            report.metrics.monotone_since(&prev),
            "finish() rolled a counter back: {prev:?} → {:?}",
            report.metrics
        );
        assert_eq!(report.metrics.samples_ingested, pushed);
        assert_eq!(report.metrics.queue_depth, 0);
        assert!(
            report.metrics.slots_accounted(),
            "slot leak: {:?}",
            report.metrics
        );
        // finish() flushes the tracker, so every born hypothesis must have
        // reached exactly one terminal transition — even on mangled input.
        assert!(
            report.metrics.hypotheses_accounted(),
            "hypothesis leak: {:?}",
            report.metrics
        );
        assert_eq!(report.metrics.slots_shed, report.shed.len() as u64);
    });
}
