//! Regression test: a long-lived station that churns decoder worker
//! threads must not leak per-thread trace rings.
//!
//! Every `ThreadPool::map` call spawns fresh scoped OS threads, and each
//! worker that emits a trace event registers a ring. Before the recorder
//! pruned exited owners' rings (see `choir_trace::drain`), a station
//! running under `CHOIR_TRACE=full` grew its ring registry by one ring
//! per worker per decode, forever. This test drives repeated station
//! runs with a multi-worker pool and requires the registry to stay
//! bounded across rounds.

use choir_channel::impairments::HardwareProfile;
use choir_channel::scenario::ScenarioBuilder;
use choir_dsp::complex::C64;
use choir_pool::ThreadPool;
use choir_station::{SlotSchedule, Station, StationConfig};
use choir_trace::TraceLevel;
use lora_phy::params::PhyParams;

const PAYLOAD_LEN: usize = 4;

#[test]
fn station_rounds_do_not_leak_trace_rings() {
    // One clean single-user slot: cheap to decode, but the decode still
    // fans out over pool workers that all emit Full-level trace events.
    let params = PhyParams::default();
    let scenario = ScenarioBuilder::new(params)
        .snrs_db(&[20.0])
        .payload_len(PAYLOAD_LEN)
        .profiles(vec![HardwareProfile {
            cfo_hz: 2.0 * 125e3 / 256.0,
            timing_offset_symbols: 0.15,
            phase: 1.0,
            cfo_jitter_hz: 0.0,
            timing_jitter_symbols: 0.0,
        }])
        .seed(41)
        .build();

    choir_trace::set_level(TraceLevel::Full);
    choir_trace::clear();
    let _ = choir_trace::drain();
    let baseline = choir_trace::active_rings();

    let mut stream: Vec<C64> = vec![C64::ZERO; 500];
    let slot_start = (stream.len() + scenario.slot_start) as u64;
    stream.extend_from_slice(&scenario.samples);
    stream.resize(stream.len() + 500, C64::ZERO);
    let chunks: Vec<Vec<C64>> = stream.chunks(2048).map(<[C64]>::to_vec).collect();

    let mut peak_after_drain = 0;
    for round in 0..8 {
        let cfg = StationConfig::known_len(params, PAYLOAD_LEN);
        let station = Station::new(cfg, SlotSchedule::Explicit(vec![slot_start]))
            .with_pool(ThreadPool::with_threads(4));
        let report = station.run(chunks.iter().cloned());
        assert_eq!(
            report.slots.len(),
            1,
            "round {round}: the slot must be captured"
        );
        // The drain prunes rings owned by this round's exited workers.
        let log = choir_trace::drain();
        assert!(
            !log.is_empty(),
            "round {round}: Full tracing must have recorded events"
        );
        peak_after_drain = peak_after_drain.max(choir_trace::active_rings());
    }
    choir_trace::set_level(TraceLevel::Off);

    // Without pruning this grows by several rings per round (one per
    // emitting worker); with pruning only the persistent test thread and
    // at most one round's not-yet-churned stragglers remain.
    assert!(
        peak_after_drain <= baseline + 2,
        "trace ring registry leaked across station rounds: baseline {baseline}, peak after drains {peak_after_drain}"
    );
}
