//! # choir-mac — LP-WAN MAC layer and network simulator
//!
//! Slotted saturated-uplink simulations of the three systems the Choir
//! paper's density evaluation (Fig. 8) compares:
//!
//! * **LoRaWAN ALOHA** — unsolicited transmissions, binary exponential
//!   backoff, collisions fatal;
//! * **LoRaWAN + Oracle** — a genie TDMA scheduler, one node per slot,
//!   zero collisions (the strongest possible conventional baseline);
//! * **Choir** — all backlogged nodes answer the beacon concurrently and
//!   the base station disentangles the collision.
//!
//! PHY outcomes are pluggable ([`phy::SlotPhy`]): the real IQ-level
//! decoder for ground truth, or per-user success tables calibrated *from*
//! the IQ decoder for long runs ([`phy::calibrate_choir_phy`]).
//! [`beacon`] implements Sec. 7.1's team scheduler: beyond-range sensors
//! are grouped into the smallest teams whose combining margin clears the
//! decoding threshold.

#![deny(missing_docs)]

pub mod beacon;
pub mod metrics;
pub mod phy;
pub mod sim;

pub use beacon::{schedule_teams, ScheduleEntry};
pub use metrics::{MetricsCollector, RunMetrics};
pub use phy::{
    calibrate_choir_phy, calibrate_choir_phy_with_pool, CollisionFatalPhy, IdealPhy, IqChoirPhy,
    SlotPhy, SlotTx, StationPhy, TabulatedChoirPhy,
};
pub use sim::{run_sim, run_sims_parallel, MacScheme, SimConfig, Traffic};
