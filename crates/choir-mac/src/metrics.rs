//! Network-level metrics — the three quantities every Fig. 8 panel plots.

/// Outcome of one simulation run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunMetrics {
    /// Successfully delivered payload bits per second of simulated time.
    pub throughput_bps: f64,
    /// Mean time from packet readiness to successful delivery (seconds).
    pub avg_latency_s: f64,
    /// Transmissions (including retransmissions) per successfully
    /// delivered packet — the battery-drain proxy of Fig. 8(c)/(f).
    pub tx_per_packet: f64,
    /// Packets delivered.
    pub delivered: u64,
    /// Total transmissions attempted.
    pub transmissions: u64,
    /// Simulated wall-clock duration (seconds).
    pub sim_time_s: f64,
}

/// Accumulator used by the simulators.
#[derive(Clone, Debug, Default)]
pub struct MetricsCollector {
    delivered: u64,
    transmissions: u64,
    delivered_bits: u64,
    latency_sum_s: f64,
    sim_time_s: f64,
}

impl MetricsCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one transmission attempt.
    pub fn record_tx(&mut self) {
        self.transmissions += 1;
    }

    /// Records a successful delivery of `payload_bits` with the given
    /// readiness-to-delivery latency.
    pub fn record_delivery(&mut self, payload_bits: u64, latency_s: f64) {
        self.delivered += 1;
        self.delivered_bits += payload_bits;
        self.latency_sum_s += latency_s;
    }

    /// Advances simulated time.
    pub fn advance_time(&mut self, dt_s: f64) {
        self.sim_time_s += dt_s;
    }

    /// Elapsed simulated time so far.
    pub fn sim_time_s(&self) -> f64 {
        self.sim_time_s
    }

    /// Finalises the run.
    pub fn finish(&self) -> RunMetrics {
        RunMetrics {
            throughput_bps: if self.sim_time_s > 0.0 {
                self.delivered_bits as f64 / self.sim_time_s
            } else {
                0.0
            },
            avg_latency_s: if self.delivered > 0 {
                self.latency_sum_s / self.delivered as f64
            } else {
                f64::INFINITY
            },
            tx_per_packet: if self.delivered > 0 {
                self.transmissions as f64 / self.delivered as f64
            } else {
                f64::INFINITY
            },
            delivered: self.delivered,
            transmissions: self.transmissions,
            sim_time_s: self.sim_time_s,
        }
    }
}

// Tests assert on exactly-representable values (0.0, bin centres).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_run_degenerate_metrics() {
        let m = MetricsCollector::new().finish();
        assert_eq!(m.throughput_bps, 0.0);
        assert!(m.avg_latency_s.is_infinite());
        assert!(m.tx_per_packet.is_infinite());
    }

    #[test]
    fn basic_accounting() {
        let mut c = MetricsCollector::new();
        for _ in 0..4 {
            c.record_tx();
        }
        c.record_delivery(800, 0.5);
        c.record_delivery(800, 1.5);
        c.advance_time(2.0);
        let m = c.finish();
        assert_eq!(m.delivered, 2);
        assert_eq!(m.transmissions, 4);
        assert!((m.throughput_bps - 800.0).abs() < 1e-9);
        assert!((m.avg_latency_s - 1.0).abs() < 1e-12);
        assert!((m.tx_per_packet - 2.0).abs() < 1e-12);
    }
}
