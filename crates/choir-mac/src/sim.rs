//! Slotted MAC simulators: ALOHA with binary exponential backoff, the
//! oracle TDMA scheduler, and Choir's beacon-triggered concurrent slots —
//! the three systems Fig. 8 compares (plus the "Ideal" upper bound).
//!
//! The workload is saturated uplink: every node always has a packet
//! pending, the regime in which the paper's density experiments measure
//! throughput, latency and transmissions-per-packet.

use lora_phy::params::PhyParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::{MetricsCollector, RunMetrics};
use crate::phy::{SlotPhy, SlotTx};

/// The MAC under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MacScheme {
    /// Slotted ALOHA with binary exponential backoff (LoRaWAN default).
    Aloha,
    /// Perfect TDMA: the oracle assigns exactly one node per slot.
    Oracle,
    /// Choir: every backlogged node transmits in the beacon slot and the
    /// base station disentangles the collision.
    Choir,
}

/// Uplink traffic model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Traffic {
    /// Every node always has a packet pending (the density experiments).
    Saturated,
    /// Each node generates one packet every `period_s` seconds (the
    /// paper's sensors report at fixed intervals, e.g. 500 ms or
    /// 1/minute); slots where a node has no pending packet are idle for
    /// it.
    Periodic {
        /// Generation period in seconds.
        period_s: f64,
    },
}

impl Traffic {
    /// When node `node` of `num_nodes` has its first packet ready.
    /// Periodic traffic staggers first arrivals uniformly across the
    /// period (sensors are not phase-locked); saturated traffic starts
    /// everyone backlogged at t = 0.
    pub fn first_ready_s(&self, node: usize, num_nodes: usize) -> f64 {
        match *self {
            Traffic::Saturated => 0.0,
            Traffic::Periodic { period_s } => period_s * node as f64 / num_nodes.max(1) as f64,
        }
    }

    /// When the *next* packet is ready after delivering one that was
    /// generated at `generated_at_s`, for a slot ending at
    /// `end_of_slot_s`. Saturated queues refill immediately; periodic
    /// sensors generate one period after the delivered reading (queue
    /// depth one — a sensor overwrites stale readings).
    pub fn next_ready_s(&self, generated_at_s: f64, end_of_slot_s: f64) -> f64 {
        match *self {
            Traffic::Saturated => end_of_slot_s,
            Traffic::Periodic { period_s } => generated_at_s + period_s,
        }
    }
}

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// PHY parameters (sets the slot airtime).
    pub params: PhyParams,
    /// Payload bytes per packet.
    pub payload_len: usize,
    /// Number of client nodes.
    pub num_nodes: usize,
    /// Number of slots to simulate.
    pub slots: usize,
    /// Per-node SNR range (dB); each node draws once (static placement).
    pub snr_range_db: (f64, f64),
    /// Beacon/coordination overhead added to each Choir/Oracle slot
    /// (seconds). ALOHA nodes transmit unsolicited and pay none.
    pub beacon_overhead_s: f64,
    /// Maximum ALOHA backoff exponent (window `2^be` slots).
    pub max_backoff_exp: u32,
    /// Traffic model.
    pub traffic: Traffic,
    /// RNG seed.
    pub seed: u64,
}

impl SimConfig {
    /// A small default configuration for tests.
    pub fn new(num_nodes: usize, slots: usize) -> Self {
        SimConfig {
            params: PhyParams::default(),
            payload_len: 8,
            num_nodes,
            slots,
            snr_range_db: (10.0, 25.0),
            beacon_overhead_s: 0.01,
            max_backoff_exp: 6,
            traffic: Traffic::Saturated,
            seed: 0,
        }
    }

    /// Airtime of one data packet (slot payload), seconds.
    pub fn packet_airtime_s(&self) -> f64 {
        self.params.time_on_air(self.payload_len)
    }

    /// Payload bits carried per delivered packet.
    pub fn payload_bits(&self) -> u64 {
        (self.payload_len * 8) as u64
    }
}

struct NodeState {
    snr_db: f64,
    /// Time the current pending packet became ready (None = queue empty,
    /// periodic traffic only).
    ready_at_s: Option<f64>,
    /// Remaining backoff slots (ALOHA only).
    backoff: usize,
    /// Current backoff exponent (ALOHA only).
    be: u32,
}

/// Runs a saturated-uplink simulation of the given MAC over the PHY.
pub fn run_sim<P: SlotPhy + ?Sized>(scheme: MacScheme, cfg: &SimConfig, phy: &mut P) -> RunMetrics {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0xC0FFEE));
    let mut metrics = MetricsCollector::new();
    let slot_s = cfg.packet_airtime_s()
        + if scheme == MacScheme::Aloha {
            0.0
        } else {
            cfg.beacon_overhead_s
        };
    let mut nodes: Vec<NodeState> = (0..cfg.num_nodes)
        .map(|i| NodeState {
            snr_db: rng.gen_range(cfg.snr_range_db.0..=cfg.snr_range_db.1),
            ready_at_s: Some(cfg.traffic.first_ready_s(i, cfg.num_nodes)),
            backoff: 0,
            be: 0,
        })
        .collect();

    let mut oracle_turn = 0usize;
    for _ in 0..cfg.slots {
        let now = metrics.sim_time_s();
        // Who has a pending packet this slot?
        let pending = |n: &NodeState| n.ready_at_s.map(|r| r <= now).unwrap_or(false);
        let txs: Vec<SlotTx> = match scheme {
            MacScheme::Aloha => nodes
                .iter_mut()
                .enumerate()
                .filter_map(|(i, n)| {
                    if !pending(n) {
                        return None;
                    }
                    if n.backoff > 0 {
                        n.backoff -= 1;
                        None
                    } else {
                        Some(SlotTx {
                            node: i,
                            snr_db: n.snr_db,
                        })
                    }
                })
                .collect(),
            MacScheme::Oracle => {
                // The oracle serves the next node with a pending packet.
                let mut chosen = None;
                for _ in 0..cfg.num_nodes {
                    let i = oracle_turn % cfg.num_nodes;
                    oracle_turn += 1;
                    if pending(&nodes[i]) {
                        chosen = Some(i);
                        break;
                    }
                }
                chosen
                    .map(|i| {
                        vec![SlotTx {
                            node: i,
                            snr_db: nodes[i].snr_db,
                        }]
                    })
                    .unwrap_or_default()
            }
            MacScheme::Choir => nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| pending(n))
                .map(|(i, n)| SlotTx {
                    node: i,
                    snr_db: n.snr_db,
                })
                .collect(),
        };

        let outcome = phy.slot_outcome(&txs, cfg.payload_len);
        debug_assert_eq!(outcome.len(), txs.len());
        let end_of_slot = now + slot_s;
        for (tx, &ok) in txs.iter().zip(&outcome) {
            metrics.record_tx();
            let node = &mut nodes[tx.node];
            if ok {
                let ready = node.ready_at_s.unwrap_or(now);
                metrics.record_delivery(cfg.payload_bits(), end_of_slot - ready);
                node.ready_at_s = Some(cfg.traffic.next_ready_s(ready, end_of_slot));
                node.be = 0;
                node.backoff = 0;
            } else if scheme == MacScheme::Aloha {
                node.be = (node.be + 1).min(cfg.max_backoff_exp);
                node.backoff = rng.gen_range(0..(1usize << node.be));
            }
        }
        metrics.advance_time(slot_s);
    }
    metrics.finish()
}

/// Runs many independent simulations in parallel through the shared
/// `choir-pool` worker pool (sized by `CHOIR_THREADS`).
///
/// `make_phy` builds a **fresh** PHY for each job — jobs never share
/// mutable PHY state — and `run_sim` seeds its own RNG from the job's
/// config, so the result vector is bit-identical to running each job
/// sequentially with its own PHY, regardless of thread count.
pub fn run_sims_parallel<F>(jobs: &[(MacScheme, SimConfig)], make_phy: F) -> Vec<RunMetrics>
where
    F: Fn(usize, MacScheme, &SimConfig) -> Box<dyn SlotPhy + Send> + Sync,
{
    choir_pool::global().map(jobs, |i, (scheme, cfg)| {
        let mut phy = make_phy(i, *scheme, cfg);
        run_sim(*scheme, cfg, &mut *phy)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phy::{CollisionFatalPhy, IdealPhy, TabulatedChoirPhy};

    fn cfg(nodes: usize) -> SimConfig {
        SimConfig::new(nodes, 400)
    }

    #[test]
    fn oracle_delivers_every_slot() {
        let c = cfg(5);
        let mut phy = CollisionFatalPhy { params: c.params };
        let m = run_sim(MacScheme::Oracle, &c, &mut phy);
        assert_eq!(m.delivered, 400);
        assert!((m.tx_per_packet - 1.0).abs() < 1e-9);
    }

    #[test]
    fn aloha_suffers_under_density() {
        let c = cfg(10);
        let mut phy = CollisionFatalPhy { params: c.params };
        let aloha = run_sim(MacScheme::Aloha, &c, &mut phy);
        let mut phy2 = CollisionFatalPhy { params: c.params };
        let oracle = run_sim(MacScheme::Oracle, &c, &mut phy2);
        assert!(
            aloha.throughput_bps < 0.7 * oracle.throughput_bps,
            "aloha {} vs oracle {}",
            aloha.throughput_bps,
            oracle.throughput_bps
        );
        assert!(aloha.tx_per_packet > 1.5);
    }

    #[test]
    fn aloha_single_node_near_perfect() {
        let c = cfg(1);
        let mut phy = CollisionFatalPhy { params: c.params };
        let m = run_sim(MacScheme::Aloha, &c, &mut phy);
        assert_eq!(m.delivered, 400);
        assert!((m.tx_per_packet - 1.0).abs() < 1e-9);
    }

    #[test]
    fn choir_ideal_scales_linearly() {
        let c4 = cfg(4);
        let m4 = run_sim(MacScheme::Choir, &c4, &mut IdealPhy);
        let c8 = cfg(8);
        let m8 = run_sim(MacScheme::Choir, &c8, &mut IdealPhy);
        let ratio = m8.throughput_bps / m4.throughput_bps;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn choir_beats_oracle_with_good_phy() {
        let c = cfg(8);
        // 90 % per-user success at any density.
        let mut phy = TabulatedChoirPhy::new(vec![0.9; 8], 3);
        let choir = run_sim(MacScheme::Choir, &c, &mut phy);
        let mut base = CollisionFatalPhy { params: c.params };
        let oracle = run_sim(MacScheme::Oracle, &c, &mut base);
        let gain = choir.throughput_bps / oracle.throughput_bps;
        assert!(gain > 5.0, "gain {gain}");
        // Latency should also be far lower than the oracle round-robin.
        assert!(choir.avg_latency_s < oracle.avg_latency_s);
    }

    #[test]
    fn degraded_phy_increases_retransmissions() {
        let c = cfg(6);
        let mut phy = TabulatedChoirPhy::new(vec![0.5; 6], 9);
        let m = run_sim(MacScheme::Choir, &c, &mut phy);
        assert!(m.tx_per_packet > 1.6, "tx/pkt {}", m.tx_per_packet);
        assert!(m.tx_per_packet < 3.0, "tx/pkt {}", m.tx_per_packet);
    }

    #[test]
    fn deterministic_under_seed() {
        let c = cfg(6);
        let a = run_sim(
            MacScheme::Choir,
            &c,
            &mut TabulatedChoirPhy::new(vec![0.7; 6], 5),
        );
        let b = run_sim(
            MacScheme::Choir,
            &c,
            &mut TabulatedChoirPhy::new(vec![0.7; 6], 5),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn periodic_traffic_caps_throughput_at_offered_load() {
        // 4 nodes, one 8-byte packet per second each → offered load is
        // 256 bps; even the ideal PHY cannot deliver more, and latency is
        // short because the channel is mostly idle.
        let mut c = cfg(4);
        c.traffic = Traffic::Periodic { period_s: 1.0 };
        c.slots = 2000;
        let m = run_sim(MacScheme::Choir, &c, &mut IdealPhy);
        let offered = 4.0 * 8.0 * 8.0 / 1.0;
        assert!(
            m.throughput_bps <= offered * 1.05,
            "tput {}",
            m.throughput_bps
        );
        assert!(
            m.throughput_bps > offered * 0.8,
            "tput {}",
            m.throughput_bps
        );
        assert!(m.avg_latency_s < 0.5, "latency {}", m.avg_latency_s);
        // Saturated traffic delivers far more on the same channel.
        let mut cs = cfg(4);
        cs.slots = 2000;
        let sat = run_sim(MacScheme::Choir, &cs, &mut IdealPhy);
        assert!(sat.throughput_bps > 3.0 * m.throughput_bps);
    }

    #[test]
    fn periodic_oracle_serves_pending_only() {
        let mut c = cfg(3);
        c.traffic = Traffic::Periodic { period_s: 5.0 };
        c.slots = 1000;
        let mut phy = CollisionFatalPhy { params: c.params };
        let m = run_sim(MacScheme::Oracle, &c, &mut phy);
        // Deliveries bounded by generation: ≤ nodes · sim_time / period.
        let bound = (3.0 * m.sim_time_s / 5.0).ceil() as u64 + 3;
        assert!(
            m.delivered <= bound,
            "delivered {} bound {bound}",
            m.delivered
        );
        assert!(m.delivered > 0);
        assert!((m.tx_per_packet - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_sims_match_sequential() {
        let jobs: Vec<(MacScheme, SimConfig)> = vec![
            (MacScheme::Aloha, cfg(6)),
            (MacScheme::Oracle, cfg(6)),
            (MacScheme::Choir, cfg(6)),
            (MacScheme::Choir, cfg(9)),
        ];
        let make = |_i: usize, scheme: MacScheme, c: &SimConfig| -> Box<dyn SlotPhy + Send> {
            match scheme {
                MacScheme::Choir => Box::new(TabulatedChoirPhy::new(vec![0.8; 8], c.seed ^ 11)),
                _ => Box::new(CollisionFatalPhy { params: c.params }),
            }
        };
        let par = run_sims_parallel(&jobs, make);
        assert_eq!(par.len(), jobs.len());
        for (i, (scheme, c)) in jobs.iter().enumerate() {
            let mut phy = make(i, *scheme, c);
            let seq = run_sim(*scheme, c, &mut *phy);
            assert_eq!(par[i], seq, "job {i} diverged");
        }
    }

    #[test]
    fn beacon_overhead_slows_choir_slots() {
        let mut c = cfg(2);
        c.beacon_overhead_s = 0.0;
        let fast = run_sim(MacScheme::Choir, &c, &mut IdealPhy);
        c.beacon_overhead_s = 0.2;
        let slow = run_sim(MacScheme::Choir, &c, &mut IdealPhy);
        assert!(slow.throughput_bps < fast.throughput_bps);
    }
}
