//! Beacon-driven team scheduling — Sec. 7.1, "Whom do we coordinate?"
//!
//! The base station knows (or learns) each sensor's SNR. Sensors that can
//! be decoded alone get individual slots; sensors beyond range are grouped
//! into teams just large enough that the team's combining margin clears
//! the decoding threshold — "larger groups of sensors for transmitters
//! that are further away", so resolution degrades gracefully with
//! distance.

/// Combining gain (dB) of an `m`-member team under non-coherent power
/// combining (see `choir-core::lowsnr`).
pub fn team_gain_db(members: usize) -> f64 {
    5.0 * (members.max(1) as f64).log10()
}

/// One scheduled uplink entity.
#[derive(Clone, Debug, PartialEq)]
pub enum ScheduleEntry {
    /// A single in-range sensor with its own slot.
    Individual(usize),
    /// A team of beyond-range sensors sharing one beacon slot.
    Team(Vec<usize>),
    /// Sensors that cannot be served even by the largest allowed team.
    Unreachable(Vec<usize>),
}

/// Builds a schedule: sensors at or above `solo_floor_db` transmit alone;
/// the rest are sorted weakest-last and greedily packed into teams whose
/// *weakest member* still clears `solo_floor_db − team_gain` with
/// `margin_db` to spare, up to `max_team` members.
pub fn schedule_teams(
    snrs_db: &[f64],
    solo_floor_db: f64,
    margin_db: f64,
    max_team: usize,
) -> Vec<ScheduleEntry> {
    assert!(max_team >= 1);
    let mut out = Vec::new();
    let mut far: Vec<usize> = Vec::new();
    for (i, &s) in snrs_db.iter().enumerate() {
        if s >= solo_floor_db + margin_db {
            out.push(ScheduleEntry::Individual(i));
        } else {
            far.push(i);
        }
    }
    // Strongest far sensors first: they need the smallest teams, and
    // grouping nearby-SNR sensors keeps team sizes minimal overall.
    far.sort_by(|&a, &b| snrs_db[b].total_cmp(&snrs_db[a]));
    let mut idx = 0usize;
    let mut unreachable = Vec::new();
    while idx < far.len() {
        // Grow a team until its weakest member clears the threshold.
        let mut team = Vec::new();
        let mut satisfied = false;
        while idx < far.len() && team.len() < max_team {
            team.push(far[idx]);
            idx += 1;
            let weakest = team
                .iter()
                .map(|&i| snrs_db[i])
                .fold(f64::INFINITY, f64::min);
            if weakest + team_gain_db(team.len()) >= solo_floor_db + margin_db {
                satisfied = true;
                // Keep absorbing equally-weak neighbours only if they'd
                // still be served; stop at the first satisfied size.
                break;
            }
        }
        if satisfied {
            out.push(ScheduleEntry::Team(team));
        } else if idx >= far.len() || team.len() >= max_team {
            // Could not satisfy even at max size: everyone left in this
            // team (and weaker) is unreachable at max_team.
            unreachable.extend(team);
            // The remaining sensors are weaker still — but a later sensor
            // may combine with others; continue trying with the rest.
        }
    }
    if !unreachable.is_empty() {
        out.push(ScheduleEntry::Unreachable(unreachable));
    }
    out
}

// Tests assert on exactly-representable values (0.0, bin centres).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_monotone() {
        assert_eq!(team_gain_db(1), 0.0);
        assert!(team_gain_db(10) > team_gain_db(2));
        assert!((team_gain_db(10) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn in_range_sensors_go_solo() {
        let snrs = [10.0, 0.0, 25.0];
        let sched = schedule_teams(&snrs, -10.0, 3.0, 8);
        let solos: Vec<usize> = sched
            .iter()
            .filter_map(|e| match e {
                ScheduleEntry::Individual(i) => Some(*i),
                _ => None,
            })
            .collect();
        assert_eq!(solos, vec![0, 1, 2]);
    }

    #[test]
    fn far_sensors_form_minimal_teams() {
        // Floor −10, margin 3 → target −7. Sensors at −10: need
        // 5·log10(m) ≥ 3 → m ≥ 4.
        let snrs = vec![-10.0; 8];
        let sched = schedule_teams(&snrs, -10.0, 3.0, 10);
        let teams: Vec<&Vec<usize>> = sched
            .iter()
            .filter_map(|e| match e {
                ScheduleEntry::Team(t) => Some(t),
                _ => None,
            })
            .collect();
        assert_eq!(teams.len(), 2);
        for t in teams {
            assert_eq!(t.len(), 4);
        }
    }

    #[test]
    fn weaker_sensors_get_larger_teams() {
        // −12 dB needs 5·log10(m) ≥ 5 → m ≥ 10; −8.5 needs m ≥ 2.
        let mut snrs = vec![-8.5; 2];
        snrs.extend(vec![-12.0; 10]);
        let sched = schedule_teams(&snrs, -10.0, 3.0, 16);
        let sizes: Vec<usize> = sched
            .iter()
            .filter_map(|e| match e {
                ScheduleEntry::Team(t) => Some(t.len()),
                _ => None,
            })
            .collect();
        assert_eq!(sizes, vec![2, 10], "strong pair first, then the big team");
    }

    #[test]
    fn hopeless_sensors_marked_unreachable() {
        let snrs = vec![-40.0; 3];
        let sched = schedule_teams(&snrs, -10.0, 3.0, 8);
        match &sched[0] {
            ScheduleEntry::Unreachable(v) => assert_eq!(v.len(), 3),
            other => panic!("expected unreachable, got {other:?}"),
        }
    }

    #[test]
    fn every_sensor_scheduled_exactly_once() {
        let snrs: Vec<f64> = (0..20).map(|i| 15.0 - 2.0 * i as f64).collect();
        let sched = schedule_teams(&snrs, -10.0, 3.0, 6);
        let mut seen = vec![false; snrs.len()];
        for e in &sched {
            let ids: Vec<usize> = match e {
                ScheduleEntry::Individual(i) => vec![*i],
                ScheduleEntry::Team(t) => t.clone(),
                ScheduleEntry::Unreachable(u) => u.clone(),
            };
            for i in ids {
                assert!(!seen[i], "sensor {i} scheduled twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn scheduled_teams_actually_clear_the_threshold() {
        let snrs: Vec<f64> = (0..16).map(|i| -8.0 - 0.5 * i as f64).collect();
        let (floor, margin) = (-10.0, 3.0);
        for e in schedule_teams(&snrs, floor, margin, 12) {
            if let ScheduleEntry::Team(t) = e {
                let weakest = t.iter().map(|&i| snrs[i]).fold(f64::INFINITY, f64::min);
                assert!(
                    weakest + team_gain_db(t.len()) >= floor + margin - 1e-9,
                    "team {t:?} does not clear the threshold"
                );
            }
        }
    }
}
