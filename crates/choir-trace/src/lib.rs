//! # choir-trace — decode-provenance tracing for the Choir pipeline
//!
//! `StationMetrics` counts outcomes and `choir_core::profile` times them;
//! this crate records *why* a slot decoded the way it did. Every stage of
//! the pipeline (offset search, SIC passes, peak de-duplication, cluster
//! assignment, station ingest/shed/degrade) emits typed [`TraceEvent`]s
//! into a bounded per-thread flight recorder, so the provenance of any
//! decode is replayable after the fact without re-running it.
//!
//! Three design rules keep tracing always-on-capable:
//!
//! 1. **Levels.** The process-wide [`TraceLevel`] ([`Off`](TraceLevel::Off)
//!    / [`Outcome`](TraceLevel::Outcome) / [`Full`](TraceLevel::Full)) is
//!    read from the `CHOIR_TRACE` environment variable once and cached in
//!    an atomic; a disabled emission is a single relaxed load and the
//!    event constructor closure is never evaluated.
//! 2. **Bounded memory.** Events land in per-thread ring buffers
//!    (overwrite-oldest, default 4096 records per thread, `CHOIR_TRACE_CAP`
//!    overrides) stamped with an absolute process-wide sequence number, so
//!    a drain can merge all threads into one causally ordered log and
//!    report exactly how many records were overwritten.
//! 3. **No contention.** Each thread appends to its own buffer; the only
//!    cross-thread synchronisation is the sequence counter (one relaxed
//!    `fetch_add`) and the drain path.
//!
//! ```
//! use choir_trace as trace;
//!
//! trace::set_level(trace::TraceLevel::Full);
//! trace::clear();
//! trace::full(|| trace::TraceEvent::PeakDedup {
//!     kept_bins: 17.25,
//!     dropped_bins: 17.31,
//!     identical_frac: 0.93,
//! });
//! let log = trace::drain();
//! assert_eq!(log.len(), 1);
//! println!("{}", trace::to_jsonl(&log));
//! trace::set_level(trace::TraceLevel::Off);
//! ```

#![deny(missing_docs)]

mod event;
mod recorder;

pub use event::{CityScheme, HypothesisTransition, TraceEvent};
pub use recorder::{active_rings, clear, drain, dropped, set_capacity, CapacityFrozen, Record};

use choir_sync::atomic::{AtomicU8, Ordering};

/// How much of the pipeline's provenance is recorded.
///
/// Ordered: each level records everything the previous one does.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Nothing is recorded; emission sites cost one relaxed atomic load.
    Off = 0,
    /// Per-slot outcomes and state transitions: decode results, typed
    /// decode errors, station shed/degrade events, metrics snapshots.
    /// Cheap enough to leave on in production (see `station_soak`'s <5 %
    /// overhead gate).
    Outcome = 1,
    /// Everything: per-window offset-search refinements, SIC passes,
    /// dedup decisions, cluster assignments and profile-stage spans.
    Full = 2,
}

/// Sentinel meaning "not yet initialised from the environment".
const LEVEL_UNSET: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn parse_level(raw: &str) -> TraceLevel {
    match raw.trim().to_ascii_lowercase().as_str() {
        "outcome" | "1" => TraceLevel::Outcome,
        "full" | "2" => TraceLevel::Full,
        _ => TraceLevel::Off,
    }
}

fn decode_level(v: u8) -> Option<TraceLevel> {
    match v {
        0 => Some(TraceLevel::Off),
        1 => Some(TraceLevel::Outcome),
        2 => Some(TraceLevel::Full),
        _ => None,
    }
}

/// The current process-wide trace level.
///
/// First call reads `CHOIR_TRACE` (`off`/`outcome`/`full`, or `0`/`1`/`2`;
/// unset or unrecognised means [`TraceLevel::Off`]); subsequent calls are
/// one relaxed atomic load.
pub fn level() -> TraceLevel {
    let cached = LEVEL.load(Ordering::Relaxed); // ordering: level is an idempotent cache of an env read; a stale miss re-parses the same value
    if let Some(l) = decode_level(cached) {
        return l;
    }
    let l = std::env::var("CHOIR_TRACE")
        .map(|v| parse_level(&v))
        .unwrap_or(TraceLevel::Off);
    LEVEL.store(l as u8, Ordering::Relaxed); // ordering: racing initialisers store the same parsed value, so publication order is irrelevant
    l
}

/// Overrides the trace level for the whole process (tools and tests; the
/// environment variable is only consulted before the first override).
pub fn set_level(l: TraceLevel) {
    LEVEL.store(l as u8, Ordering::Relaxed); // ordering: a level flip may be observed late by other threads; emission is best-effort by contract
}

/// True when events at `min` verbosity would be recorded. Use to skip
/// building expensive event payloads at call sites.
pub fn enabled(min: TraceLevel) -> bool {
    min != TraceLevel::Off && level() >= min
}

/// Records the event built by `f` if the current level is at least `min`.
/// The closure is not evaluated otherwise.
pub fn emit(min: TraceLevel, f: impl FnOnce() -> TraceEvent) {
    if enabled(min) {
        recorder::record(f());
    }
}

/// Records an [`TraceLevel::Outcome`]-level event (lazily built).
pub fn outcome(f: impl FnOnce() -> TraceEvent) {
    emit(TraceLevel::Outcome, f);
}

/// Records a [`TraceLevel::Full`]-level event (lazily built).
pub fn full(f: impl FnOnce() -> TraceEvent) {
    emit(TraceLevel::Full, f);
}

/// Marks entry into a named pipeline stage (recorded at `Full`).
///
/// `choir_core::profile::scope` calls this with its stage name, so the
/// flight recorder interleaves stage spans with the events emitted inside
/// them — a drained log shows *which stage* produced each record.
pub fn span_enter(stage: &'static str) {
    full(|| TraceEvent::SpanEnter { stage });
}

/// Marks exit from a named pipeline stage (recorded at `Full`), with the
/// stage's exclusive nanoseconds as accounted by the profiler.
pub fn span_exit(stage: &'static str, exclusive_ns: u64) {
    full(|| TraceEvent::SpanExit {
        stage,
        exclusive_ns,
    });
}

thread_local! {
    /// The preamble-window index the current thread is decoding; stamped
    /// by the decoder so deep emission sites (SIC passes, offset-search
    /// refinements) can tag events without widening their signatures.
    static WINDOW: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Sets the calling thread's current-window context (see
/// [`current_window`]). Decoders stamp this before descending into
/// per-window stages; it is purely observational.
pub fn set_window(w: u64) {
    WINDOW.with(|c| c.set(w));
}

/// The window index last stamped on this thread via [`set_window`]
/// (0 before any stamp).
pub fn current_window() -> u64 {
    WINDOW.with(std::cell::Cell::get)
}

/// Serialises drained records as JSON Lines: one self-contained JSON
/// object per record, stable field order, `seq` first.
pub fn to_jsonl(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_accepts_names_and_digits() {
        assert_eq!(parse_level("off"), TraceLevel::Off);
        assert_eq!(parse_level("0"), TraceLevel::Off);
        assert_eq!(parse_level(" Outcome "), TraceLevel::Outcome);
        assert_eq!(parse_level("1"), TraceLevel::Outcome);
        assert_eq!(parse_level("FULL"), TraceLevel::Full);
        assert_eq!(parse_level("2"), TraceLevel::Full);
        assert_eq!(parse_level("verbose"), TraceLevel::Off);
        assert_eq!(parse_level(""), TraceLevel::Off);
    }

    #[test]
    fn off_level_skips_closure() {
        let _g = recorder::test_guard();
        set_level(TraceLevel::Off);
        let mut ran = false;
        emit(TraceLevel::Outcome, || {
            ran = true;
            TraceEvent::SpanEnter { stage: "sic" }
        });
        assert!(!ran, "event constructor must not run when tracing is off");
    }

    #[test]
    fn outcome_level_drops_full_events() {
        let _g = recorder::test_guard();
        set_level(TraceLevel::Outcome);
        clear();
        full(|| TraceEvent::SpanEnter { stage: "refine" });
        outcome(|| TraceEvent::StationDegrade {
            active: true,
            queue_depth: 3,
        });
        let log = drain();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].event.kind(), "station_degrade");
        set_level(TraceLevel::Off);
    }
}
