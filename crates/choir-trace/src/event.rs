//! The typed event vocabulary of the decode pipeline, plus hand-rolled
//! JSON serialisation (the workspace builds offline with no serde).

/// One provenance record from the decode pipeline.
///
/// Variants are grouped by the level at which emission sites record them:
/// `Full`-level events describe *how* a decode proceeded (per window, per
/// SIC pass, per cluster assignment), `Outcome`-level events describe
/// *what happened* (slot results, typed errors, station transitions).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// One Algorithm-1 offset-search refinement over a dechirped preamble
    /// window: the coarse FFT-peak candidates, the converged fractional
    /// positions and the joint residual they achieved. (`Full`)
    OffsetSearch {
        /// Preamble window index this search ran over.
        window: u64,
        /// Residual evaluations spent before convergence (search effort).
        evals: u64,
        /// Coarse candidate positions entering the search, in bins.
        coarse_bins: Vec<f64>,
        /// Refined candidate positions at convergence, index-aligned with
        /// `coarse_bins`.
        refined_bins: Vec<f64>,
        /// Joint least-squares residual power at the refined positions.
        residual: f64,
    },
    /// One phased-SIC pass: which user components were cancelled and how
    /// much residual power the window retained afterwards. (`Full`)
    SicPass {
        /// Preamble window index the pass ran over.
        window: u64,
        /// Zero-based pass (phase) number.
        phase: u32,
        /// Residual power after subtracting this pass's cohort, relative
        /// to the window's input power.
        relative_residual: f64,
        /// Fractional-bin positions of the components cancelled by this
        /// pass — the pipeline's user identities at this stage.
        cancelled_bins: Vec<f64>,
    },
    /// A peak de-duplication verdict: a candidate decode was dropped as a
    /// ghost of a stronger one because their symbol streams were near
    /// identical. (`Full`)
    PeakDedup {
        /// Offset (bins) of the decode that was kept.
        kept_bins: f64,
        /// Offset (bins) of the decode that was discarded.
        dropped_bins: f64,
        /// Fraction of symbol positions on which the two agreed.
        identical_frac: f64,
    },
    /// One HMRF-KMeans assignment decision: which cluster an observation
    /// landed in and how many cannot-link constraints the final labelling
    /// violates at that observation. (`Full`)
    ClusterAssign {
        /// Observation index in the clustering input.
        obs: u64,
        /// Window the observation came from.
        window: u64,
        /// Assigned cluster id.
        cluster: u32,
        /// Cannot-link constraints involving `obs` that the final
        /// assignment violates (0 for a clean labelling).
        violations: u32,
    },
    /// One merged user track surviving preamble discovery — the decoder's
    /// working definition of "a user" entering demodulation. (`Full`)
    UserTrack {
        /// Track index (order of discovery).
        track: u32,
        /// Circular-mean position of the track, in bins.
        pos_bins: f64,
        /// Number of preamble windows supporting the track.
        support: u32,
        /// Mean channel magnitude across supporting windows.
        mag: f64,
    },
    /// Entry into a `choir_core::profile` stage scope. (`Full`)
    SpanEnter {
        /// Stage name, index-aligned with `profile::STAGE_NAMES`.
        stage: &'static str,
    },
    /// Exit from a `choir_core::profile` stage scope. (`Full`)
    SpanExit {
        /// Stage name, index-aligned with `profile::STAGE_NAMES`.
        stage: &'static str,
        /// Exclusive nanoseconds billed to the stage by the profiler
        /// (child scopes subtracted).
        exclusive_ns: u64,
    },
    /// A slot finished decoding. (`Outcome`)
    ///
    /// Emitted by the decoder itself, so both batch and streaming paths
    /// produce one per slot; whether a streaming slot ran in degraded
    /// mode is bracketed by the surrounding [`TraceEvent::StationDegrade`]
    /// transitions.
    SlotOutcome {
        /// Start position of the slot within its capture buffer.
        slot_start: u64,
        /// Users decoded from the collision.
        users: u32,
        /// Users whose payload passed CRC.
        crc_ok: u32,
    },
    /// A typed `DecodeError` was constructed — every construction site in
    /// the pipeline emits one of these (enforced by the `trace_event`
    /// lint rule). (`Outcome`)
    DecodeFailed {
        /// Stable error-kind tag (`truncated_slot`, `singular_fit`, ...).
        kind: &'static str,
        /// Human-readable detail (the error's `Display` output).
        detail: String,
    },
    /// A chunk of IQ samples entered the station ring. (`Full`)
    StationIngest {
        /// Samples in the pushed chunk.
        samples: u64,
        /// Ring samples overwritten to make room (0 when keeping up).
        overwritten: u64,
        /// Absolute stream position after the push.
        stream_pos: u64,
    },
    /// The sample ring wrapped: unconsumed samples were overwritten by
    /// newer ones because ingest outran the decode side. (`Full`)
    RingOverwrite {
        /// Samples overwritten by this push.
        overwritten: u64,
        /// Oldest still-resident absolute sample index after the push.
        tail: u64,
        /// Absolute stream position after the push.
        head: u64,
    },
    /// The station shed a scheduled slot instead of decoding it. (`Outcome`)
    StationShed {
        /// Absolute stream position of the shed slot.
        slot_start: u64,
        /// Why: `queue_full` (dispatch backlog) or `ring_overrun`
        /// (samples overwritten before capture).
        reason: &'static str,
    },
    /// The station crossed its pressure watermark and switched decode
    /// configurations. (`Outcome`)
    StationDegrade {
        /// True when entering degraded mode, false when recovering.
        active: bool,
        /// Dispatch-queue depth at the transition.
        queue_depth: u64,
    },
    /// A station metrics snapshot, embedded as its canonical JSON
    /// object. (`Outcome`)
    MetricsSnapshot {
        /// `StationMetrics::to_json()` output (a valid JSON object).
        json: String,
    },
    /// One lifecycle transition of a multi-hypothesis tracker candidate
    /// (born / confirmed / expired / merged) inside the station's
    /// unslotted detection path. Construct via [`TraceEvent::hypothesis`]
    /// only — the `trace_event` lint rule rejects literal construction
    /// outside this crate, which keeps the transition vocabulary closed
    /// to [`HypothesisTransition`]. (`Full` for births/expiries/merges;
    /// stations emit confirmations at `Outcome`.)
    Hypothesis {
        /// Transition tag — always one of [`HypothesisTransition::tag`].
        transition: &'static str,
        /// Tracker-unique hypothesis id.
        id: u64,
        /// Symbol-window index of the transition.
        window: u64,
        /// Absolute sample index of the candidate packet start.
        start: u64,
        /// Dechirped bin the candidate persisted at.
        bin: u16,
        /// Deflated peak score (single-window at birth, accumulated at
        /// confirmation; 0 where not meaningful).
        score: f64,
        /// Supporting windows accumulated at the transition.
        support: u32,
    },
    /// One MAC-simulation slot outcome from a Choir-backed PHY. (`Full`)
    MacSlot {
        /// Slot number within the simulation.
        slot: u64,
        /// Transmissions offered to the slot (colliders).
        offered: u32,
        /// Frames delivered after collision decoding.
        delivered: u32,
    },
    /// One city-simulator slot outcome at a gateway shard — the
    /// `mac_slot` analogue for `choir-city`, with the gateway and MAC
    /// scheme identifying the shard the slot belongs to. Construct via
    /// [`TraceEvent::city_slot`] only — the `trace_event` lint rule
    /// rejects literal construction outside this crate, which keeps the
    /// scheme vocabulary closed to [`CityScheme`]. (`Full`)
    CitySlot {
        /// Scheme tag — always one of [`CityScheme::tag`].
        scheme: &'static str,
        /// Gateway (shard) index within the city.
        gateway: u32,
        /// Slot number within the gateway's simulation.
        slot: u64,
        /// Frames offered to the slot (concurrent transmissions).
        offered: u32,
        /// Frames delivered out of the slot.
        delivered: u32,
    },
}

/// The closed set of MAC schemes the city simulator traces. The typed
/// enum (rather than a free string) is what makes
/// [`TraceEvent::city_slot`] the blessed constructor: emission sites
/// cannot invent new scheme names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CityScheme {
    /// Unslotted ALOHA (adjacent-slot vulnerability, no coordination).
    Aloha,
    /// Slotted ALOHA with strongest-signal capture.
    Slotted,
    /// Choir beacon slots with collision decoding.
    Choir,
    /// SS5G-style collision resolution (slot-shift decoding).
    Ss5g,
}

impl CityScheme {
    /// Stable snake_case tag used in exported logs.
    pub fn tag(self) -> &'static str {
        match self {
            CityScheme::Aloha => "aloha",
            CityScheme::Slotted => "slotted",
            CityScheme::Choir => "choir",
            CityScheme::Ss5g => "ss5g",
        }
    }
}

/// The closed set of tracker-hypothesis lifecycle transitions. The typed
/// enum (rather than a free string) is what makes
/// [`TraceEvent::hypothesis`] the blessed constructor: emission sites
/// cannot invent new transition names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HypothesisTransition {
    /// A peak no live hypothesis claimed started a new candidate.
    Born,
    /// The hypothesis met the confirmation criteria and was reported.
    Confirmed,
    /// The hypothesis ran out of support (or was evicted) unconfirmed.
    Expired,
    /// The hypothesis was folded into a duplicate tracking the same bin.
    Merged,
}

impl HypothesisTransition {
    /// Stable snake_case tag used in exported logs.
    pub fn tag(self) -> &'static str {
        match self {
            HypothesisTransition::Born => "born",
            HypothesisTransition::Confirmed => "confirmed",
            HypothesisTransition::Expired => "expired",
            HypothesisTransition::Merged => "merged",
        }
    }
}

impl TraceEvent {
    /// The blessed constructor for [`TraceEvent::Hypothesis`]: lifecycle
    /// transitions may only be emitted through here (lint-enforced), so
    /// the transition tags stay closed to [`HypothesisTransition`].
    pub fn hypothesis(
        transition: HypothesisTransition,
        id: u64,
        window: u64,
        start: u64,
        bin: u16,
        score: f64,
        support: u32,
    ) -> TraceEvent {
        // lint:allow(trace_event) — this *is* the blessed constructor.
        TraceEvent::Hypothesis {
            transition: transition.tag(),
            id,
            window,
            start,
            bin,
            score,
            support,
        }
    }

    /// The blessed constructor for [`TraceEvent::CitySlot`]: city slot
    /// provenance may only be emitted through here (lint-enforced), so
    /// the scheme tags stay closed to [`CityScheme`].
    pub fn city_slot(
        scheme: CityScheme,
        gateway: u32,
        slot: u64,
        offered: u32,
        delivered: u32,
    ) -> TraceEvent {
        // lint:allow(trace_event) — this *is* the blessed constructor.
        TraceEvent::CitySlot {
            scheme: scheme.tag(),
            gateway,
            slot,
            offered,
            delivered,
        }
    }

    /// Stable snake_case tag identifying the variant in exported logs.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::OffsetSearch { .. } => "offset_search",
            TraceEvent::SicPass { .. } => "sic_pass",
            TraceEvent::PeakDedup { .. } => "peak_dedup",
            TraceEvent::ClusterAssign { .. } => "cluster_assign",
            TraceEvent::UserTrack { .. } => "user_track",
            TraceEvent::SpanEnter { .. } => "span_enter",
            TraceEvent::SpanExit { .. } => "span_exit",
            TraceEvent::SlotOutcome { .. } => "slot_outcome",
            TraceEvent::DecodeFailed { .. } => "decode_failed",
            TraceEvent::StationIngest { .. } => "station_ingest",
            TraceEvent::RingOverwrite { .. } => "ring_overwrite",
            TraceEvent::StationShed { .. } => "station_shed",
            TraceEvent::StationDegrade { .. } => "station_degrade",
            TraceEvent::MetricsSnapshot { .. } => "metrics_snapshot",
            TraceEvent::Hypothesis { .. } => "hypothesis",
            TraceEvent::MacSlot { .. } => "mac_slot",
            TraceEvent::CitySlot { .. } => "city_slot",
        }
    }

    /// Appends this event's fields (without the enclosing braces) as
    /// `"key": value` JSON members, `kind` first.
    pub(crate) fn write_json_fields(&self, out: &mut String) {
        out.push_str("\"kind\": \"");
        out.push_str(self.kind());
        out.push('"');
        match self {
            TraceEvent::OffsetSearch {
                window,
                evals,
                coarse_bins,
                refined_bins,
                residual,
            } => {
                jint(out, "window", *window);
                jint(out, "evals", *evals);
                jarr(out, "coarse_bins", coarse_bins);
                jarr(out, "refined_bins", refined_bins);
                jnum(out, "residual", *residual);
            }
            TraceEvent::SicPass {
                window,
                phase,
                relative_residual,
                cancelled_bins,
            } => {
                jint(out, "window", *window);
                jint(out, "phase", u64::from(*phase));
                jnum(out, "relative_residual", *relative_residual);
                jarr(out, "cancelled_bins", cancelled_bins);
            }
            TraceEvent::PeakDedup {
                kept_bins,
                dropped_bins,
                identical_frac,
            } => {
                jnum(out, "kept_bins", *kept_bins);
                jnum(out, "dropped_bins", *dropped_bins);
                jnum(out, "identical_frac", *identical_frac);
            }
            TraceEvent::ClusterAssign {
                obs,
                window,
                cluster,
                violations,
            } => {
                jint(out, "obs", *obs);
                jint(out, "window", *window);
                jint(out, "cluster", u64::from(*cluster));
                jint(out, "violations", u64::from(*violations));
            }
            TraceEvent::UserTrack {
                track,
                pos_bins,
                support,
                mag,
            } => {
                jint(out, "track", u64::from(*track));
                jnum(out, "pos_bins", *pos_bins);
                jint(out, "support", u64::from(*support));
                jnum(out, "mag", *mag);
            }
            TraceEvent::SpanEnter { stage } => jstr(out, "stage", stage),
            TraceEvent::SpanExit {
                stage,
                exclusive_ns,
            } => {
                jstr(out, "stage", stage);
                jint(out, "exclusive_ns", *exclusive_ns);
            }
            TraceEvent::SlotOutcome {
                slot_start,
                users,
                crc_ok,
            } => {
                jint(out, "slot_start", *slot_start);
                jint(out, "users", u64::from(*users));
                jint(out, "crc_ok", u64::from(*crc_ok));
            }
            TraceEvent::DecodeFailed { kind, detail } => {
                jstr(out, "error", kind);
                jstr(out, "detail", detail);
            }
            TraceEvent::StationIngest {
                samples,
                overwritten,
                stream_pos,
            } => {
                jint(out, "samples", *samples);
                jint(out, "overwritten", *overwritten);
                jint(out, "stream_pos", *stream_pos);
            }
            TraceEvent::RingOverwrite {
                overwritten,
                tail,
                head,
            } => {
                jint(out, "overwritten", *overwritten);
                jint(out, "tail", *tail);
                jint(out, "head", *head);
            }
            TraceEvent::StationShed { slot_start, reason } => {
                jint(out, "slot_start", *slot_start);
                jstr(out, "reason", reason);
            }
            TraceEvent::StationDegrade {
                active,
                queue_depth,
            } => {
                jbool(out, "active", *active);
                jint(out, "queue_depth", *queue_depth);
            }
            TraceEvent::MetricsSnapshot { json } => {
                // Already a JSON object; embed verbatim.
                out.push_str(", \"metrics\": ");
                out.push_str(json);
            }
            TraceEvent::Hypothesis {
                transition,
                id,
                window,
                start,
                bin,
                score,
                support,
            } => {
                jstr(out, "transition", transition);
                jint(out, "id", *id);
                jint(out, "window", *window);
                jint(out, "start", *start);
                jint(out, "bin", u64::from(*bin));
                jnum(out, "score", *score);
                jint(out, "support", u64::from(*support));
            }
            TraceEvent::MacSlot {
                slot,
                offered,
                delivered,
            } => {
                jint(out, "slot", *slot);
                jint(out, "offered", u64::from(*offered));
                jint(out, "delivered", u64::from(*delivered));
            }
            TraceEvent::CitySlot {
                scheme,
                gateway,
                slot,
                offered,
                delivered,
            } => {
                jstr(out, "scheme", scheme);
                jint(out, "gateway", u64::from(*gateway));
                jint(out, "slot", *slot);
                jint(out, "offered", u64::from(*offered));
                jint(out, "delivered", u64::from(*delivered));
            }
        }
    }
}

fn jkey(out: &mut String, key: &str) {
    out.push_str(", \"");
    out.push_str(key);
    out.push_str("\": ");
}

fn jint(out: &mut String, key: &str, v: u64) {
    jkey(out, key);
    out.push_str(&v.to_string());
}

fn jbool(out: &mut String, key: &str, v: bool) {
    jkey(out, key);
    out.push_str(if v { "true" } else { "false" });
}

/// Finite floats print via Rust's shortest-round-trip `Display`; NaN and
/// infinities (invalid JSON numbers) serialise as `null`.
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = v.to_string();
        out.push_str(&s);
        // Bare integers like "3" are valid JSON but lose the "this was a
        // float" signal round-trip; keep a decimal point.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn jnum(out: &mut String, key: &str, v: f64) {
    jkey(out, key);
    write_f64(out, v);
}

fn jarr(out: &mut String, key: &str, vs: &[f64]) {
    jkey(out, key);
    out.push('[');
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_f64(out, *v);
    }
    out.push(']');
}

/// JSON string escaping: quotes, backslashes and control characters.
pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn jstr(out: &mut String, key: &str, v: &str) {
    jkey(out, key);
    out.push('"');
    escape_into(out, v);
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_tags_are_stable() {
        let e = TraceEvent::SicPass {
            window: 2,
            phase: 0,
            relative_residual: 0.25,
            cancelled_bins: vec![3.5],
        };
        assert_eq!(e.kind(), "sic_pass");
    }

    #[test]
    fn non_finite_floats_serialise_as_null() {
        let mut out = String::new();
        let e = TraceEvent::PeakDedup {
            kept_bins: f64::NAN,
            dropped_bins: f64::INFINITY,
            identical_frac: 0.5,
        };
        e.write_json_fields(&mut out);
        assert!(out.contains("\"kept_bins\": null"));
        assert!(out.contains("\"dropped_bins\": null"));
        assert!(out.contains("\"identical_frac\": 0.5"));
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        let mut out = String::new();
        let e = TraceEvent::UserTrack {
            track: 0,
            pos_bins: 17.0,
            support: 6,
            mag: 1.0,
        };
        e.write_json_fields(&mut out);
        assert!(out.contains("\"pos_bins\": 17.0"), "got: {out}");
    }

    #[test]
    fn hypothesis_constructor_serialises_transition_tag() {
        let e = TraceEvent::hypothesis(
            HypothesisTransition::Confirmed,
            7,
            42,
            10752,
            219,
            1290.5,
            8,
        );
        assert_eq!(e.kind(), "hypothesis");
        let mut out = String::new();
        e.write_json_fields(&mut out);
        assert!(out.contains("\"transition\": \"confirmed\""), "got: {out}");
        assert!(out.contains("\"start\": 10752"), "got: {out}");
        assert!(out.contains("\"score\": 1290.5"), "got: {out}");
    }

    #[test]
    fn city_slot_constructor_serialises_scheme_tag() {
        let e = TraceEvent::city_slot(CityScheme::Ss5g, 12, 480, 3, 3);
        assert_eq!(e.kind(), "city_slot");
        let mut out = String::new();
        e.write_json_fields(&mut out);
        assert!(out.contains("\"scheme\": \"ss5g\""), "got: {out}");
        assert!(out.contains("\"gateway\": 12"), "got: {out}");
        assert!(out.contains("\"offered\": 3"), "got: {out}");
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        let e = TraceEvent::DecodeFailed {
            kind: "frame",
            detail: "bad \"sync\"\nline".to_string(),
        };
        e.write_json_fields(&mut out);
        assert!(out.contains("bad \\\"sync\\\"\\nline"), "got: {out}");
    }
}
