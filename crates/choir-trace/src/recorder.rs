//! The flight recorder: bounded per-thread ring buffers with absolute
//! sequence numbers, merged into one causally ordered log on drain.
//!
//! Each thread appends to its own ring (overwrite-oldest), so the hot
//! path never contends with other emitters; the per-ring mutex is only
//! ever contested by a drain. Sequence numbers come from one process-wide
//! relaxed counter and are *absolute*: they keep climbing across drains,
//! so two drained logs can be concatenated and re-sorted without
//! ambiguity, and a gap in the sequence pinpoints overwritten records.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::event::TraceEvent;

/// Default ring capacity per thread (records), `CHOIR_TRACE_CAP` overrides.
const DEFAULT_CAP: usize = 4096;

/// One recorded event with its global ordering stamp.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Absolute process-wide sequence number (emission order).
    pub seq: u64,
    /// Small dense id of the emitting thread (assignment order).
    pub thread: u64,
    /// The event payload.
    pub event: TraceEvent,
}

impl Record {
    /// Serialises the record as one self-contained JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"seq\": ");
        out.push_str(&self.seq.to_string());
        out.push_str(", \"thread\": ");
        out.push_str(&self.thread.to_string());
        out.push_str(", ");
        self.event.write_json_fields(&mut out);
        out.push('}');
        out
    }
}

/// A bounded overwrite-oldest buffer owned by one emitting thread.
struct Ring {
    buf: VecDeque<Record>,
    cap: usize,
    overwritten: u64,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            buf: VecDeque::with_capacity(cap.min(1024)),
            cap,
            overwritten: 0,
        }
    }

    fn push(&mut self, r: Record) {
        if self.buf.len() >= self.cap {
            self.buf.pop_front();
            self.overwritten += 1;
        }
        self.buf.push_back(r);
    }
}

static SEQ: AtomicU64 = AtomicU64::new(0);
static THREAD_IDS: AtomicU64 = AtomicU64::new(0);

type Shared = Arc<Mutex<Ring>>;

fn registry() -> &'static Mutex<Vec<Shared>> {
    static REGISTRY: OnceLock<Mutex<Vec<Shared>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

static CAP: OnceLock<usize> = OnceLock::new();

fn capacity() -> usize {
    *CAP.get_or_init(|| {
        std::env::var("CHOIR_TRACE_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_CAP)
    })
}

/// Pins the per-thread ring capacity programmatically, overriding
/// `CHOIR_TRACE_CAP`. Only effective before the first emission — rings
/// that already exist keep their size. Returns false if the capacity was
/// already fixed.
pub fn set_capacity(cap: usize) -> bool {
    CAP.set(cap.max(1)).is_ok()
}

thread_local! {
    /// This thread's (id, ring); created lazily on first emission and
    /// kept alive by the registry after the thread exits, so late drains
    /// still see the records of finished worker threads.
    static LOCAL: RefCell<Option<(u64, Shared)>> = const { RefCell::new(None) };
}

/// Appends an event to the calling thread's ring (called by `emit` after
/// the level check passed).
pub(crate) fn record(event: TraceEvent) {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    LOCAL.with(|l| {
        let mut slot = l.borrow_mut();
        let (thread, ring) = slot.get_or_insert_with(|| {
            let id = THREAD_IDS.fetch_add(1, Ordering::Relaxed);
            let ring: Shared = Arc::new(Mutex::new(Ring::new(capacity())));
            lock_clean(registry()).push(Arc::clone(&ring));
            (id, ring)
        });
        lock_clean(ring).push(Record {
            seq,
            thread: *thread,
            event,
        });
    });
}

/// Locks a mutex, recovering the guard if a previous holder panicked —
/// a half-written trace log is still worth draining.
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Removes and returns every buffered record from every thread, merged
/// into absolute sequence order. Overwrite counters are left untouched
/// (see [`dropped`]); sequence numbers keep climbing across drains.
pub fn drain() -> Vec<Record> {
    let rings = lock_clean(registry());
    let mut all: Vec<Record> = Vec::new();
    for ring in rings.iter() {
        all.extend(lock_clean(ring).buf.drain(..));
    }
    drop(rings);
    all.sort_by_key(|r| r.seq);
    all
}

/// Total records overwritten (lost to ring wraparound) since the last
/// [`clear`], summed over all threads. Non-zero means the drained log has
/// sequence gaps.
pub fn dropped() -> u64 {
    let rings = lock_clean(registry());
    rings.iter().map(|r| lock_clean(r).overwritten).sum()
}

/// Discards all buffered records and resets overwrite counters. Sequence
/// numbers are *not* reset — they are absolute for the process lifetime.
pub fn clear() {
    let rings = lock_clean(registry());
    for ring in rings.iter() {
        let mut g = lock_clean(ring);
        g.buf.clear();
        g.overwritten = 0;
    }
}

#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    lock_clean(&GUARD)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceLevel;

    fn span(stage: &'static str) -> TraceEvent {
        TraceEvent::SpanEnter { stage }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts() {
        let mut ring = Ring::new(3);
        for i in 0..5u64 {
            ring.push(Record {
                seq: i,
                thread: 0,
                event: span("dechirp"),
            });
        }
        assert_eq!(ring.overwritten, 2);
        let seqs: Vec<u64> = ring.buf.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest records must be evicted");
    }

    #[test]
    fn drain_merges_threads_in_sequence_order() {
        let _g = test_guard();
        crate::set_level(TraceLevel::Full);
        clear();
        let _ = drain();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..25 {
                        crate::full(|| span("refine"));
                    }
                })
            })
            .collect();
        for t in threads {
            let _ = t.join();
        }
        crate::full(|| span("sic"));
        let log = drain();
        crate::set_level(TraceLevel::Off);
        assert_eq!(log.len(), 101);
        for pair in log.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "drain must sort by sequence");
        }
        let distinct: std::collections::HashSet<u64> = log.iter().map(|r| r.thread).collect();
        assert!(distinct.len() >= 4, "expected records from worker threads");
        assert!(drain().is_empty(), "drain must consume the buffers");
    }

    #[test]
    fn record_json_is_one_object_per_line() {
        let r = Record {
            seq: 7,
            thread: 1,
            event: TraceEvent::StationShed {
                slot_start: 4096,
                reason: "queue_full",
            },
        };
        let j = r.to_json();
        assert!(j.starts_with("{\"seq\": 7, \"thread\": 1, \"kind\": \"station_shed\""));
        assert!(j.contains("\"reason\": \"queue_full\""));
        assert!(!j.contains('\n'));
    }
}
