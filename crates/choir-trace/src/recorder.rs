//! The flight recorder: bounded per-thread ring buffers with absolute
//! sequence numbers, merged into one causally ordered log on drain.
//!
//! Each thread appends to its own ring (overwrite-oldest), so the hot
//! path never contends with other emitters; the per-ring mutex is only
//! ever contested by a drain. Sequence numbers come from one process-wide
//! relaxed counter and are *absolute*: they keep climbing across drains,
//! so two drained logs can be concatenated and re-sorted without
//! ambiguity, and a gap in the sequence pinpoints overwritten records.
//!
//! Ring lifetime: a ring outlives its emitting thread so a late drain
//! still sees a finished worker's records, but it does not outlive the
//! *next* drain after the thread exits — [`drain`] prunes rings whose
//! owner is gone (detected via the registry holding the last `Arc`),
//! carrying their overwrite counts into an orphan total so [`dropped`]
//! stays accurate. Long-lived processes that churn worker threads
//! therefore hold rings only for live threads plus not-yet-drained
//! corpses, not one per thread ever created.
//!
//! Synchronisation goes through the [`choir_sync`] facade; the recorder's
//! invariants (sequence monotonicity, drain-vs-emit, churn pruning) are
//! model-checked in `tests/model.rs` under `cargo xtask ci model-check`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::Arc;

use choir_sync::atomic::{AtomicU64, Ordering};
use choir_sync::{Mutex, OnceLock};

use crate::event::TraceEvent;

/// Default ring capacity per thread (records), `CHOIR_TRACE_CAP` overrides.
const DEFAULT_CAP: usize = 4096;

/// One recorded event with its global ordering stamp.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Absolute process-wide sequence number (emission order).
    pub seq: u64,
    /// Small dense id of the emitting thread (assignment order).
    pub thread: u64,
    /// The event payload.
    pub event: TraceEvent,
}

impl Record {
    /// Serialises the record as one self-contained JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"seq\": ");
        out.push_str(&self.seq.to_string());
        out.push_str(", \"thread\": ");
        out.push_str(&self.thread.to_string());
        out.push_str(", ");
        self.event.write_json_fields(&mut out);
        out.push('}');
        out
    }
}

/// A bounded overwrite-oldest buffer owned by one emitting thread.
struct Ring {
    buf: VecDeque<Record>,
    cap: usize,
    overwritten: u64,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            buf: VecDeque::with_capacity(cap.min(1024)),
            cap,
            overwritten: 0,
        }
    }

    fn push(&mut self, r: Record) {
        if self.buf.len() >= self.cap {
            self.buf.pop_front();
            self.overwritten += 1;
        }
        self.buf.push_back(r);
    }
}

static SEQ: AtomicU64 = AtomicU64::new(0);
static THREAD_IDS: AtomicU64 = AtomicU64::new(0);
/// Overwrite counts inherited from rings pruned by [`drain`] after their
/// owning thread exited, so [`dropped`] survives the pruning.
static PRUNED_OVERWRITTEN: AtomicU64 = AtomicU64::new(0);

type Shared = Arc<Mutex<Ring>>;

fn registry() -> &'static Mutex<Vec<Shared>> {
    static REGISTRY: OnceLock<Mutex<Vec<Shared>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

static CAP: OnceLock<usize> = OnceLock::new();

/// The frozen per-thread ring capacity. First freeze wins: either the
/// first [`set_capacity`] call or — on the first emission — the
/// `CHOIR_TRACE_CAP` environment variable (unset/unparsable falls back to
/// [`DEFAULT_CAP`]).
fn capacity() -> usize {
    *CAP.get_or_init(|| {
        std::env::var("CHOIR_TRACE_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_CAP)
    })
}

/// The per-thread ring capacity is already frozen (by an earlier
/// [`set_capacity`] call or by the first emission reading
/// `CHOIR_TRACE_CAP`), so a new value cannot take effect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CapacityFrozen {
    /// The capacity (records per ring) that remains in effect.
    pub current: usize,
}

impl std::fmt::Display for CapacityFrozen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace ring capacity already frozen at {} records per thread",
            self.current
        )
    }
}

impl std::error::Error for CapacityFrozen {}

/// Pins the per-thread ring capacity programmatically, overriding
/// `CHOIR_TRACE_CAP`. Only effective before the capacity freezes (first
/// emission, or an earlier call); rings that already exist keep their
/// size. Setting the value that is already frozen succeeds (idempotent);
/// otherwise the error reports the capacity actually in effect, so
/// callers can no longer mistake a late configuration for an applied one.
pub fn set_capacity(cap: usize) -> Result<(), CapacityFrozen> {
    let want = cap.max(1);
    if CAP.set(want).is_ok() {
        return Ok(());
    }
    let current = capacity();
    if current == want {
        Ok(())
    } else {
        Err(CapacityFrozen { current })
    }
}

thread_local! {
    /// This thread's (id, ring); created lazily on first emission. The
    /// registry holds a second `Arc` to the ring, which keeps it drainable
    /// after the thread exits — until the next [`drain`] prunes it.
    static LOCAL: RefCell<Option<(u64, Shared)>> = const { RefCell::new(None) };
}

/// Appends an event to the calling thread's ring (called by `emit` after
/// the level check passed).
pub(crate) fn record(event: TraceEvent) {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed); // ordering: the stamp only needs global uniqueness+monotonicity, which fetch_add gives at any ordering; readers sort by seq after draining
    LOCAL.with(|l| {
        let mut slot = l.borrow_mut();
        let (thread, ring) = slot.get_or_insert_with(|| {
            let id = THREAD_IDS.fetch_add(1, Ordering::Relaxed); // ordering: dense thread ids only need uniqueness; no data is published through this counter
            let ring: Shared = Arc::new(Mutex::new(Ring::new(capacity())));
            registry().lock().push(Arc::clone(&ring));
            (id, ring)
        });
        ring.lock().push(Record {
            seq,
            thread: *thread,
            event,
        });
    });
}

/// Removes and returns every buffered record from every thread, merged
/// into absolute sequence order. Overwrite counters are left untouched
/// (see [`dropped`]); sequence numbers keep climbing across drains.
///
/// Draining also prunes rings whose owning thread has exited (their
/// records are in this drain's output; their overwrite counts move to the
/// orphan total), so thread churn cannot grow the registry without bound.
pub fn drain() -> Vec<Record> {
    let mut rings = registry().lock();
    let mut all: Vec<Record> = Vec::new();
    for ring in rings.iter() {
        // lint:allow(lock_scope) — ring locks nest inside the registry lock by design; emitters take only their own ring lock and never the registry while holding it, so the inverse order cannot occur
        all.extend(ring.lock().buf.drain(..));
    }
    rings.retain(|ring| {
        // The registry and the owner's thread-local each hold one Arc;
        // a count of 1 means the owner's thread-local was destroyed, so
        // no further records can ever land in this ring.
        if Arc::strong_count(ring) > 1 {
            return true;
        }
        // The owner may have emitted between this drain's collect pass
        // and now, then exited (emitters never hold the registry lock, so
        // the collect pass does not fence them out). Those records are
        // already in the ring and the count of 1 proves no more can come:
        // sweep them into this drain before pruning, or they would be
        // silently discarded with the ring.
        // lint:allow(lock_scope) — same deliberate registry→ring nesting as the drain loop above
        let mut g = ring.lock();
        all.extend(g.buf.drain(..));
        let orphaned = g.overwritten;
        if orphaned > 0 {
            PRUNED_OVERWRITTEN.fetch_add(orphaned, Ordering::Relaxed); // ordering: plain counter accumulation; read only via dropped() which tolerates any interleaving
        }
        false
    });
    drop(rings);
    all.sort_by_key(|r| r.seq);
    all
}

/// Total records overwritten (lost to ring wraparound) since the last
/// [`clear`], summed over all threads — including threads whose rings
/// were pruned after they exited. Non-zero means drained logs have
/// sequence gaps.
pub fn dropped() -> u64 {
    let rings = registry().lock();
    let live: u64 = rings
        .iter()
        // lint:allow(lock_scope) — deliberate registry→ring nesting, see drain(); emitters never hold a ring lock while taking the registry
        .map(|r| r.lock().overwritten)
        .sum();
    live + PRUNED_OVERWRITTEN.load(Ordering::Relaxed) // ordering: monotonic counter read; staleness only under-reports momentarily
}

/// Discards all buffered records and resets overwrite counters (both live
/// rings and the orphan total). Sequence numbers are *not* reset — they
/// are absolute for the process lifetime.
pub fn clear() {
    let rings = registry().lock();
    for ring in rings.iter() {
        // lint:allow(lock_scope) — deliberate registry→ring nesting, see drain(); emitters never hold a ring lock while taking the registry
        let mut g = ring.lock();
        g.buf.clear();
        g.overwritten = 0;
    }
    drop(rings);
    PRUNED_OVERWRITTEN.store(0, Ordering::Relaxed); // ordering: reset of a best-effort loss counter; racing emitters may re-add immediately, which clear() cannot prevent at any ordering
}

/// Number of per-thread rings currently registered: live emitting threads
/// plus exited threads whose rings the next [`drain`] will prune.
pub fn active_rings() -> usize {
    registry().lock().len()
}

#[cfg(test)]
pub(crate) fn test_guard() -> choir_sync::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceLevel;

    fn span(stage: &'static str) -> TraceEvent {
        TraceEvent::SpanEnter { stage }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts() {
        let mut ring = Ring::new(3);
        for i in 0..5u64 {
            ring.push(Record {
                seq: i,
                thread: 0,
                event: span("dechirp"),
            });
        }
        assert_eq!(ring.overwritten, 2);
        let seqs: Vec<u64> = ring.buf.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest records must be evicted");
    }

    #[test]
    fn drain_merges_threads_in_sequence_order() {
        let _g = test_guard();
        crate::set_level(TraceLevel::Full);
        clear();
        let _ = drain();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..25 {
                        crate::full(|| span("refine"));
                    }
                })
            })
            .collect();
        for t in threads {
            let _ = t.join();
        }
        crate::full(|| span("sic"));
        let log = drain();
        crate::set_level(TraceLevel::Off);
        assert_eq!(log.len(), 101);
        for pair in log.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "drain must sort by sequence");
        }
        let distinct: std::collections::HashSet<u64> = log.iter().map(|r| r.thread).collect();
        assert!(distinct.len() >= 4, "expected records from worker threads");
        assert!(drain().is_empty(), "drain must consume the buffers");
    }

    #[test]
    fn record_json_is_one_object_per_line() {
        let r = Record {
            seq: 7,
            thread: 1,
            event: TraceEvent::StationShed {
                slot_start: 4096,
                reason: "queue_full",
            },
        };
        let j = r.to_json();
        assert!(j.starts_with("{\"seq\": 7, \"thread\": 1, \"kind\": \"station_shed\""));
        assert!(j.contains("\"reason\": \"queue_full\""));
        assert!(!j.contains('\n'));
    }

    #[test]
    fn thread_churn_does_not_leak_rings() {
        let _g = test_guard();
        crate::set_level(TraceLevel::Full);
        clear();
        let _ = drain();
        let baseline = active_rings();
        for round in 0..30 {
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    std::thread::spawn(|| {
                        crate::full(|| span("churn"));
                    })
                })
                .collect();
            for w in workers {
                let _ = w.join();
            }
            // The four exited workers' rings are drained and pruned here;
            // join() guarantees their thread-locals were destroyed first.
            let log = drain();
            assert!(
                log.iter()
                    .filter(
                        |r| matches!(r.event, TraceEvent::SpanEnter { stage } if stage == "churn")
                    )
                    .count()
                    >= 4,
                "round {round}: churn records must survive until the prune"
            );
            assert!(
                active_rings() <= baseline + 1,
                "round {round}: registry grew to {} rings (baseline {baseline}) — churned threads are leaking",
                active_rings()
            );
        }
        crate::set_level(TraceLevel::Off);
    }

    #[test]
    fn pruned_rings_keep_their_overwrite_counts() {
        let _g = test_guard();
        crate::set_level(TraceLevel::Full);
        clear();
        let _ = drain();
        let cap = capacity();
        let worker = std::thread::spawn(move || {
            for _ in 0..cap + 5 {
                crate::full(|| span("overflow"));
            }
        });
        let _ = worker.join();
        let lost_before = dropped();
        assert!(lost_before >= 5, "worker must have overwritten records");
        let _ = drain();
        assert_eq!(
            dropped(),
            lost_before,
            "pruning the exited worker's ring must not erase its loss count"
        );
        clear();
        assert_eq!(dropped(), 0, "clear must reset the orphan total too");
        crate::set_level(TraceLevel::Off);
    }

    #[test]
    fn set_capacity_reports_frozen_capacity() {
        // Freeze (this test may race others in the binary for who froze
        // first, so only assert the post-freeze contract).
        let frozen = match set_capacity(1 << 14) {
            Ok(()) => 1 << 14,
            Err(CapacityFrozen { current }) => current,
        };
        assert_eq!(
            set_capacity(frozen),
            Ok(()),
            "re-setting the frozen value is idempotent"
        );
        assert_eq!(
            set_capacity(frozen + 1),
            Err(CapacityFrozen { current: frozen }),
            "a different value must report the capacity in effect"
        );
    }
}
