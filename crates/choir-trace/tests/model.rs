//! Model-checked suite for the flight recorder.
//!
//! Drives the real recorder (global sequence stamp, per-thread rings,
//! registry, drain/prune) under the `choir-sync` schedule explorer.
//! Compiled only under `RUSTFLAGS="--cfg choir_model"` (`cargo xtask ci
//! model-check`).
//!
//! The recorder's state is process-global, so the tests in this binary
//! serialise on a local mutex (the explorer itself only serialises the
//! `explore` calls, not the set-up around them) and measure everything
//! via per-schedule deltas: drained counts of marker events, ring-count
//! differences — never absolute global values.
#![cfg(choir_model)]

use choir_sync::model::{explore, Config};
use choir_sync::thread;
use choir_trace::{TraceEvent, TraceLevel};

/// Serialises the tests in this binary: they all mutate the recorder's
/// process-global state.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn emit(stage: &'static str) {
    choir_trace::full(|| TraceEvent::SpanEnter { stage });
}

fn count(log: &[choir_trace::Record], stage: &'static str) -> usize {
    log.iter()
        .filter(|r| matches!(r.event, TraceEvent::SpanEnter { stage: s } if s == stage))
        .count()
}

/// Concurrent emitters: no record is lost, the global sequence stamps are
/// strictly monotonic after the merge sort, each record carries its true
/// emitting thread, and per-thread emission order is preserved.
#[test]
fn concurrent_emitters_merge_without_loss_or_misattribution() {
    let _s = serial();
    choir_trace::set_level(TraceLevel::Full);
    let report = explore(Config::new(500), || {
        choir_trace::clear();
        let _ = choir_trace::drain();
        thread::scope(|s| {
            s.spawn(|| {
                emit("model_a");
                emit("model_a");
            });
            s.spawn(|| {
                emit("model_b");
                emit("model_b");
            });
        });
        let log = choir_trace::drain();
        assert_eq!(count(&log, "model_a"), 2, "thread A records lost");
        assert_eq!(count(&log, "model_b"), 2, "thread B records lost");
        for pair in log.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "drain must sort strictly by seq");
        }
        // Attribution: the two A-records share one thread id, the two
        // B-records another, and the ids differ; within a thread, seq
        // order equals emission order (both events are "SpanEnter", so
        // order is visible through seq monotonicity per thread id).
        let a_threads: Vec<u64> = log
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::SpanEnter { stage } if stage == "model_a"))
            .map(|r| r.thread)
            .collect();
        let b_threads: Vec<u64> = log
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::SpanEnter { stage } if stage == "model_b"))
            .map(|r| r.thread)
            .collect();
        assert_eq!(
            a_threads[0], a_threads[1],
            "thread A records split across ids"
        );
        assert_eq!(
            b_threads[0], b_threads[1],
            "thread B records split across ids"
        );
        assert_ne!(
            a_threads[0], b_threads[0],
            "records attributed to the wrong thread"
        );
    });
    assert!(
        report.distinct >= 250,
        "expected broad emit-interleaving coverage, got {report:?}"
    );
}

/// A drain racing a live emitter: every record lands in exactly one
/// drain (no loss, no duplication), whichever way the race resolves.
#[test]
fn drain_racing_emitter_never_loses_or_duplicates() {
    let _s = serial();
    choir_trace::set_level(TraceLevel::Full);
    let report = explore(Config::new(500), || {
        choir_trace::clear();
        let _ = choir_trace::drain();
        let mut seqs: Vec<u64> = Vec::new();
        thread::scope(|s| {
            let h = s.spawn(|| {
                emit("model_race");
                emit("model_race");
                emit("model_race");
            });
            // Concurrent drain: may observe 0..=3 of the emitter's
            // records depending on the schedule.
            let mid = choir_trace::drain();
            seqs.extend(
                mid.iter()
                    .filter(|r| matches!(r.event, TraceEvent::SpanEnter { stage } if stage == "model_race"))
                    .map(|r| r.seq),
            );
            assert!(h.join().is_ok());
        });
        let rest = choir_trace::drain();
        seqs.extend(
            rest.iter()
                .filter(
                    |r| matches!(r.event, TraceEvent::SpanEnter { stage } if stage == "model_race"),
                )
                .map(|r| r.seq),
        );
        // This caught a real bug: drain's prune pass used to discard
        // records that an emitter pushed between the drain's collect
        // pass and its retain pass, when the emitter then exited.
        assert_eq!(
            seqs.len(),
            3,
            "a record was lost or duplicated across drains"
        );
        let mut dedup = seqs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "duplicate sequence stamps across drains");
    });
    assert!(
        report.distinct >= 250,
        "expected broad drain-vs-emit coverage, got {report:?}"
    );
}

/// Ring pruning under the model: once the emitting thread exits, the
/// next drain removes its ring — and a drain racing the thread's *exit*
/// never removes a ring that could still receive records.
#[test]
fn exited_emitters_ring_is_pruned_by_next_drain() {
    let _s = serial();
    choir_trace::set_level(TraceLevel::Full);
    let report = explore(Config::new(300), || {
        choir_trace::clear();
        let _ = choir_trace::drain();
        let before = choir_trace::active_rings();
        thread::scope(|s| {
            s.spawn(|| emit("model_churn"));
        });
        // The worker has fully exited (scope joined it); its record must
        // still be visible to this drain, after which its ring is gone.
        let log = choir_trace::drain();
        assert_eq!(count(&log, "model_churn"), 1, "record lost before prune");
        assert!(
            choir_trace::active_rings() <= before,
            "exited worker's ring survived the drain"
        );
    });
    // The drain is sequenced strictly after the scope join here, so the
    // only concurrency is spawn-vs-root before the join: the space is
    // small and fully explored.
    assert!(
        report.complete && report.distinct >= 5,
        "expected exhaustive exit/drain coverage, got {report:?}"
    );
}
