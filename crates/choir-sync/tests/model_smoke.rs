//! Self-checks for the model scheduler: these validate the checker
//! itself (interleaving coverage, mutual exclusion, deadlock detection,
//! panic containment) before the workspace suites rely on it.
//!
//! Compiled only under `RUSTFLAGS="--cfg choir_model"`; see
//! `cargo xtask ci model-check`.
#![cfg(choir_model)]

use choir_sync::atomic::{AtomicU64, Ordering};
use choir_sync::model::{explore, Config};
use choir_sync::{thread, Mutex};

/// Two atomic incrementers: the total must be exact under every
/// schedule, and the tiny space must be fully enumerated.
#[test]
fn atomic_counter_exact_under_all_schedules() {
    let report = explore(Config::new(512), || {
        let hits = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed); // ordering: model smoke counter
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2); // ordering: model smoke counter
    });
    assert!(
        report.complete,
        "two one-op threads must be exhaustively enumerable, got {report:?}"
    );
    assert!(
        report.distinct >= 2,
        "expected several interleavings, got {report:?}"
    );
}

/// A deliberately racy read-modify-write: the checker must reach both
/// the correct outcome and the lost-update outcome across schedules.
#[test]
fn lost_update_race_is_reachable() {
    use std::sync::atomic::AtomicU8 as SeenMask; // test-side accumulator, invisible to the model
    let seen = SeenMask::new(0);
    explore(Config::new(512), || {
        let racy = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let v = racy.load(Ordering::Relaxed); // ordering: intentional racy RMW
                    racy.store(v + 1, Ordering::Relaxed); // ordering: intentional racy RMW
                });
            }
        });
        let end = racy.load(Ordering::Relaxed); // ordering: intentional racy RMW
        assert!(end == 1 || end == 2, "impossible final value {end}");
        seen.fetch_or(1 << end, std::sync::atomic::Ordering::Relaxed);
    });
    let mask = seen.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(
        mask, 0b110,
        "exploration must hit both the lost-update (1) and correct (2) outcomes, mask {mask:#b}"
    );
}

/// Mutex-guarded increments never lose updates under any schedule.
#[test]
fn mutex_increments_never_lost() {
    let report = explore(Config::new(1024), || {
        let total = Mutex::new(0u64);
        thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let mut g = total.lock();
                    let v = *g;
                    *g = v + 1;
                });
            }
        });
        assert_eq!(*total.lock(), 3);
    });
    assert!(
        report.distinct >= 10,
        "three contending threads should branch widely, got {report:?}"
    );
}

/// Self-deadlock (re-entrant lock) is reported as a deadlock with the
/// failing schedule, not a hang.
#[test]
fn self_deadlock_is_detected() {
    let result = std::panic::catch_unwind(|| {
        explore(Config::new(8), || {
            let m = Mutex::new(());
            let _outer = m.lock();
            let _inner = m.lock(); // re-entrant: blocks on itself forever
        });
    });
    let Err(payload) = result else {
        unreachable!("re-entrant locking must be reported as deadlock");
    };
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .unwrap_or("");
    assert!(
        msg.contains("deadlock"),
        "expected a deadlock diagnosis, got: {msg}"
    );
}

/// A panicking child is contained: `join` returns its payload, sibling
/// threads and later schedules are unaffected.
#[test]
fn child_panic_is_contained_in_join() {
    let report = explore(Config::new(256), || {
        let ok = AtomicU64::new(0);
        thread::scope(|s| {
            let bad = s.spawn(|| std::panic::panic_any("boom"));
            let good = s.spawn(|| {
                ok.fetch_add(1, Ordering::Relaxed); // ordering: model smoke counter
            });
            let err = bad.join();
            assert!(
                matches!(err, Err(ref p) if p.downcast_ref::<&str>() == Some(&"boom")),
                "join must surface the child's payload"
            );
            assert!(good.join().is_ok());
        });
        assert_eq!(ok.load(Ordering::Relaxed), 1); // ordering: model smoke counter
    });
    assert!(
        report.schedules >= 2,
        "expected exploration, got {report:?}"
    );
}

/// An unjoined panicking child re-raises at scope exit (std semantics),
/// and the failure report names the schedule.
#[test]
fn unjoined_child_panic_reraises_at_scope_exit() {
    let result = std::panic::catch_unwind(|| {
        explore(Config::new(8), || {
            thread::scope(|s| {
                s.spawn(|| std::panic::panic_any("late boom"));
            });
        });
    });
    let Err(payload) = result else {
        unreachable!("scope must re-raise an unjoined child panic");
    };
    assert_eq!(
        payload.downcast_ref::<&str>(),
        Some(&"late boom"),
        "scope exit must surface the original payload"
    );
}
