//! The deterministic model scheduler behind `cfg(choir_model)`.
//!
//! One thread runs at a time; every facade operation (atomic op, lock
//! acquire/release, `OnceLock` access, spawn/join) is a *yield point*
//! where the scheduler may hand the token to another runnable thread.
//! [`explore`] runs a closure under many schedules: first a depth-first
//! enumeration of the branching decision tree (exhaustive when it fits
//! the budget), then seeded random sampling for the remainder. Executed
//! code is the real workspace code — the only difference from a normal
//! build is *when* each thread advances.
//!
//! Because execution is serialised, the model checks all interleavings
//! of operations under sequential consistency; it does not model
//! weak-memory reordering (see the crate docs for why that matches this
//! workspace's atomics usage).
//!
//! A failing schedule prints its decision path; re-run the same test
//! with `CHOIR_MODEL_REPLAY=<comma-separated path>` to execute exactly
//! that schedule first.

use std::collections::HashSet;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};
use std::time::Duration;

/// Marker payload used to unwind threads of an aborted schedule
/// (deadlock or root panic). Never surfaces as a test failure itself.
struct AbortPanic;

/// What a model thread is currently doing, from the scheduler's view.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Th {
    Runnable,
    /// Waiting for the modelled lock at this address.
    BlockedLock(usize),
    /// Waiting for the thread with this id to finish.
    BlockedJoin(usize),
    Finished,
}

/// Sentinel for "no thread holds the token".
const NO_TID: usize = usize::MAX;

/// How long a token wait may sit idle before the run is declared stuck.
/// Generous: real schedules hand the token over in microseconds.
const STUCK_TIMEOUT: Duration = Duration::from_secs(20);

/// Cap on model threads per schedule; a test exceeding it is a bug.
const MAX_THREADS: usize = 64;

struct State {
    /// True while `explore` is running a schedule.
    active: bool,
    /// True once the current schedule is being torn down.
    aborted: bool,
    /// Human-readable deadlock / stuck diagnosis, if any.
    deadlock: Option<String>,
    threads: Vec<Th>,
    /// Thread id currently holding the run token.
    current: usize,
    /// Modelled lock table: `(mutex address, owner tid)`.
    locks: Vec<(usize, usize)>,
    /// Decision indices to replay from a previous schedule (DFS).
    prefix: Vec<usize>,
    /// `(chosen index, candidate count)` per branching decision so far.
    decisions: Vec<(usize, usize)>,
    /// Stop recording decisions past this depth (choices default to 0).
    max_depth: usize,
    /// Random sampling mode (vs DFS first-candidate default).
    sample: bool,
    rng: u64,
}

impl State {
    const fn new() -> Self {
        State {
            active: false,
            aborted: false,
            deadlock: None,
            threads: Vec::new(),
            current: NO_TID,
            locks: Vec::new(),
            prefix: Vec::new(),
            decisions: Vec::new(),
            max_depth: 0,
            sample: false,
            rng: 1,
        }
    }
}

static STATE: StdMutex<State> = StdMutex::new(State::new());
static CV: Condvar = Condvar::new();
/// Serialises whole explorations: the scheduler state is global, so two
/// concurrent `explore` calls (e.g. two `#[test]`s) must not interleave.
static EXPLORE_LOCK: StdMutex<()> = StdMutex::new(());

thread_local! {
    /// This OS thread's model id, if it belongs to the active schedule.
    static TID: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

fn cur_tid() -> Option<usize> {
    TID.with(std::cell::Cell::get)
}

fn lock_state() -> StdMutexGuard<'static, State> {
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn raise_abort() -> ! {
    resume_unwind(Box::new(AbortPanic))
}

/// True if `p` is the internal abort marker rather than a real panic.
pub(crate) fn is_abort_payload(p: &(dyn std::any::Any + Send)) -> bool {
    p.downcast_ref::<AbortPanic>().is_some()
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

fn describe(st: &State) -> String {
    let mut out = String::from("threads: ");
    for (i, th) in st.threads.iter().enumerate() {
        out.push_str(&format!("[{i}:{th:?}] "));
    }
    out.push_str("locks: ");
    for (addr, owner) in &st.locks {
        out.push_str(&format!("[{addr:#x} held by {owner}] "));
    }
    out
}

/// Picks the next token holder among runnable threads, recording the
/// decision when it branches. Declares deadlock if nothing can run while
/// unfinished threads remain. Returns `Err(())` on abort/deadlock.
fn pick_next(st: &mut State) -> Result<(), ()> {
    let candidates: Vec<usize> = st
        .threads
        .iter()
        .enumerate()
        .filter(|(_, th)| **th == Th::Runnable)
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        if st.threads.iter().all(|th| *th == Th::Finished) {
            st.current = NO_TID;
            CV.notify_all();
            return Ok(());
        }
        st.deadlock = Some(format!("no runnable thread; {}", describe(st)));
        st.aborted = true;
        CV.notify_all();
        return Err(());
    }
    let depth = st.decisions.len();
    let idx = if depth < st.prefix.len() {
        st.prefix[depth].min(candidates.len() - 1)
    } else if candidates.len() <= 1 {
        0
    } else if st.sample {
        (xorshift(&mut st.rng) as usize) % candidates.len()
    } else {
        0
    };
    if candidates.len() > 1 && depth < st.max_depth {
        st.decisions.push((idx, candidates.len()));
    }
    st.current = candidates[idx];
    CV.notify_all();
    Ok(())
}

/// Blocks until `me` holds the token. `Err(())` means the schedule
/// aborted while waiting (caller decides whether that may panic — drop
/// paths must not).
fn wait_for_token(
    mut g: StdMutexGuard<'static, State>,
    me: usize,
) -> Result<StdMutexGuard<'static, State>, ()> {
    let mut timeouts = 0u32;
    while !g.aborted && g.current != me {
        let (ng, to) = CV
            .wait_timeout(g, STUCK_TIMEOUT)
            .unwrap_or_else(PoisonError::into_inner);
        g = ng;
        if to.timed_out() {
            timeouts += 1;
            if timeouts >= 2 {
                g.deadlock = Some(format!(
                    "scheduler stuck: thread {me} never got the token; {}",
                    describe(&g)
                ));
                g.aborted = true;
                CV.notify_all();
            }
        }
    }
    if g.aborted {
        Err(())
    } else {
        Ok(g)
    }
}

/// A scheduling decision point: the current thread offers the token to
/// any runnable thread (possibly keeping it). No-op off-schedule.
pub(crate) fn op_yield() {
    let Some(me) = cur_tid() else { return };
    let g = lock_state();
    if g.aborted {
        drop(g);
        raise_abort();
    }
    yield_from(g, me);
}

/// Shared tail of every panicking yield: pick a successor, wait for the
/// token back, abort-unwind if the schedule died meanwhile.
fn yield_from(mut g: StdMutexGuard<'static, State>, me: usize) {
    if pick_next(&mut g).is_err() {
        drop(g);
        raise_abort();
    }
    if wait_for_token(g, me).is_err() {
        raise_abort();
    }
}

/// Acquires the modelled lock at `addr`, blocking in the model while
/// another model thread owns it. Returns `false` (no-op) off-schedule.
pub(crate) fn lock_acquire(addr: usize) -> bool {
    let Some(me) = cur_tid() else { return false };
    op_yield();
    loop {
        let mut g = lock_state();
        if g.aborted {
            drop(g);
            raise_abort();
        }
        if g.locks.iter().all(|(a, _)| *a != addr) {
            g.locks.push((addr, me));
            return true;
        }
        g.threads[me] = Th::BlockedLock(addr);
        if pick_next(&mut g).is_err() {
            drop(g);
            raise_abort();
        }
        match wait_for_token(g, me) {
            Ok(_) => {} // woken as owner candidate: retry the acquire
            Err(()) => raise_abort(),
        }
    }
}

/// Releases the modelled lock at `addr` and yields. Runs on guard-drop
/// paths (possibly mid-unwind), so it must never start a new panic:
/// on abort it cleans up and returns.
pub(crate) fn lock_release(addr: usize) {
    let Some(me) = cur_tid() else { return };
    let mut g = lock_state();
    g.locks.retain(|(a, _)| *a != addr);
    for th in g.threads.iter_mut() {
        if *th == Th::BlockedLock(addr) {
            *th = Th::Runnable;
        }
    }
    if g.aborted {
        CV.notify_all();
        return;
    }
    // A release can only unblock threads, and `me` is still runnable, so
    // pick_next cannot report deadlock here.
    if pick_next(&mut g).is_err() {
        return;
    }
    drop(wait_for_token(g, me));
}

/// Registers a thread about to be spawned. `None` when the spawner is
/// not part of a schedule — the child then runs unmodelled.
pub(crate) fn spawn_register() -> Option<usize> {
    cur_tid()?;
    let mut g = lock_state();
    if !g.active {
        return None;
    }
    if g.aborted {
        drop(g);
        raise_abort();
    }
    if g.threads.len() >= MAX_THREADS {
        g.deadlock = Some(format!(
            "model thread limit ({MAX_THREADS}) exceeded; {}",
            describe(&g)
        ));
        g.aborted = true;
        CV.notify_all();
        drop(g);
        raise_abort();
    }
    let id = g.threads.len();
    g.threads.push(Th::Runnable);
    Some(id)
}

/// First call inside a spawned model thread: adopt `id` and wait to be
/// scheduled for the first time.
pub(crate) fn child_begin(id: usize) {
    TID.with(|t| t.set(Some(id)));
    let g = lock_state();
    if wait_for_token(g, id).is_err() {
        raise_abort();
    }
}

/// Last call inside a spawned model thread: mark it finished, wake any
/// joiner, and hand the token on. Runs after the panic guard, so it must
/// not panic itself.
pub(crate) fn child_end(id: usize) {
    let mut g = lock_state();
    g.threads[id] = Th::Finished;
    // A finished thread must not leak a modelled lock (a panicking
    // holder released via guard drop during unwind; anything left here
    // would wedge every waiter).
    g.locks.retain(|(_, owner)| *owner != id);
    for th in g.threads.iter_mut() {
        if *th == Th::BlockedJoin(id) {
            *th = Th::Runnable;
        }
    }
    TID.with(|t| t.set(None));
    if g.aborted {
        CV.notify_all();
        return;
    }
    let _ = pick_next(&mut g);
}

/// Blocks the calling model thread until thread `id` finishes.
pub(crate) fn join_wait(id: usize) {
    let Some(me) = cur_tid() else { return };
    loop {
        let mut g = lock_state();
        if g.threads[id] == Th::Finished {
            return;
        }
        if g.aborted {
            drop(g);
            raise_abort();
        }
        g.threads[me] = Th::BlockedJoin(id);
        if pick_next(&mut g).is_err() {
            drop(g);
            raise_abort();
        }
        if wait_for_token(g, me).is_err() {
            raise_abort();
        }
    }
}

/// Aborts the current schedule: every waiting model thread wakes and
/// unwinds with the internal abort marker.
pub(crate) fn mark_abort() {
    let mut g = lock_state();
    g.aborted = true;
    CV.notify_all();
}

/// Exploration budget and strategy knobs. `resolved()` applies the
/// `CHOIR_MODEL_SCHEDULES` / `CHOIR_MODEL_DEPTH` / `CHOIR_MODEL_SEED`
/// environment overrides.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Total schedules to run (DFS first, then random sampling).
    pub max_schedules: usize,
    /// Branching decisions recorded per schedule; deeper choices fall
    /// back to first-candidate and are not enumerated.
    pub max_depth: usize,
    /// Seed for the sampling phase.
    pub seed: u64,
}

impl Config {
    /// A config running up to `max_schedules` schedules with the default
    /// depth bound and seed.
    pub const fn new(max_schedules: usize) -> Self {
        Config {
            max_schedules,
            max_depth: 40,
            seed: 0x5eed_c401,
        }
    }

    /// Applies `CHOIR_MODEL_*` environment overrides to this config.
    pub fn resolved(mut self) -> Self {
        if let Some(n) = env_usize("CHOIR_MODEL_SCHEDULES") {
            self.max_schedules = n;
        }
        if let Some(n) = env_usize("CHOIR_MODEL_DEPTH") {
            self.max_depth = n;
        }
        if let Some(n) = env_usize("CHOIR_MODEL_SEED") {
            self.seed = n as u64;
        }
        self
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok())
}

/// What an exploration covered.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Schedules executed.
    pub schedules: usize,
    /// Distinct decision paths among them (sampling can repeat paths).
    pub distinct: usize,
    /// True when DFS exhausted the whole decision tree within budget —
    /// every interleaving (at the recorded depth) was run.
    pub complete: bool,
}

/// Runs `f` under explored thread schedules and reports coverage.
///
/// `f` runs once per schedule on the calling thread (model id 0); it
/// typically spawns threads via [`crate::thread`] and asserts its
/// invariants before returning. A panic in any schedule prints that
/// schedule's decision path — re-run with `CHOIR_MODEL_REPLAY=<path>`
/// to execute it first — and then propagates.
pub fn explore<F: Fn()>(cfg: Config, f: F) -> Report {
    let _serial = EXPLORE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let cfg = cfg.resolved();
    let mut distinct: HashSet<Vec<(usize, usize)>> = HashSet::new();
    let mut schedules = 0usize;

    if let Ok(replay) = std::env::var("CHOIR_MODEL_REPLAY") {
        let prefix: Vec<usize> = replay
            .split(',')
            .filter_map(|p| p.trim().parse().ok())
            .collect();
        eprintln!("choir_model: replaying requested schedule {prefix:?}");
        let path = run_schedule(&f, prefix, false, 0, cfg.max_depth);
        distinct.insert(path);
        schedules += 1;
    }

    // Phase 1: DFS over the decision tree.
    let mut prefix: Vec<usize> = Vec::new();
    let mut complete = false;
    while schedules < cfg.max_schedules {
        let path = run_schedule(&f, prefix.clone(), false, 0, cfg.max_depth);
        schedules += 1;
        // Backtrack: bump the deepest decision that still has an
        // unexplored sibling, drop everything below it.
        let mut next = path.clone();
        distinct.insert(path);
        loop {
            match next.last().copied() {
                None => {
                    complete = true;
                    break;
                }
                Some((idx, n)) if idx + 1 < n => {
                    let depth = next.len() - 1;
                    prefix = next.iter().take(depth).map(|d| d.0).collect();
                    prefix.push(idx + 1);
                    break;
                }
                Some(_) => {
                    next.pop();
                }
            }
        }
        if complete {
            break;
        }
    }

    // Phase 2: seeded random sampling of whatever DFS did not reach.
    let mut seed = cfg.seed;
    while !complete && schedules < cfg.max_schedules {
        let per_run = xorshift(&mut seed) | 1;
        let path = run_schedule(&f, Vec::new(), true, per_run, cfg.max_depth);
        schedules += 1;
        distinct.insert(path);
    }

    Report {
        schedules,
        distinct: distinct.len(),
        complete,
    }
}

/// Runs one schedule and returns its recorded decision path.
fn run_schedule<F: Fn()>(
    f: &F,
    prefix: Vec<usize>,
    sample: bool,
    rng: u64,
    max_depth: usize,
) -> Vec<(usize, usize)> {
    {
        let mut g = lock_state();
        g.active = true;
        g.aborted = false;
        g.deadlock = None;
        g.threads.clear();
        g.threads.push(Th::Runnable);
        g.current = 0;
        g.locks.clear();
        g.prefix = prefix;
        g.decisions.clear();
        g.max_depth = max_depth;
        g.sample = sample;
        g.rng = rng | 1;
    }
    TID.with(|t| t.set(Some(0)));
    let result = catch_unwind(AssertUnwindSafe(f));
    TID.with(|t| t.set(None));

    // Teardown: drain any straggler threads so the next schedule starts
    // from a clean slate, then collect what happened.
    let (path, deadlock) = {
        let mut g = lock_state();
        g.threads[0] = Th::Finished;
        if g.threads.iter().any(|th| *th != Th::Finished) {
            g.aborted = true;
            CV.notify_all();
            let mut waited = 0u32;
            while g.threads.iter().any(|th| *th != Th::Finished) && waited < 40 {
                let (ng, _) = CV
                    .wait_timeout(g, Duration::from_millis(500))
                    .unwrap_or_else(PoisonError::into_inner);
                g = ng;
                waited += 1;
            }
            if g.threads.iter().any(|th| *th != Th::Finished) {
                eprintln!(
                    "choir_model: leaking a stuck thread at schedule teardown; {}",
                    describe(&g)
                );
            }
        }
        g.active = false;
        (std::mem::take(&mut g.decisions), g.deadlock.take())
    };

    match result {
        Ok(()) if deadlock.is_none() => path,
        outcome => {
            let idx_path: Vec<usize> = path.iter().map(|d| d.0).collect();
            let replay: Vec<String> = idx_path.iter().map(usize::to_string).collect();
            eprintln!(
                "choir_model: schedule failed; decision path {idx_path:?} \
                 (reproduce with CHOIR_MODEL_REPLAY={})",
                replay.join(",")
            );
            if let Some(d) = deadlock {
                resume_unwind(Box::new(format!(
                    "choir_model: deadlock under schedule {idx_path:?}: {d}"
                )));
            }
            match outcome {
                Err(p) if !is_abort_payload(&p) => resume_unwind(p),
                _ => resume_unwind(Box::new(format!(
                    "choir_model: schedule {idx_path:?} aborted without diagnosis"
                ))),
            }
        }
    }
}
