//! Thread spawning through the facade: std re-exports normally; under
//! `cfg(choir_model)` every spawned thread registers with the model
//! scheduler and runs only when scheduled.
//!
//! The model wrappers keep std's semantics observable from the outside:
//! `join` returns `Err(payload)` for a panicking thread, and a scope
//! whose unjoined child panicked re-raises that payload at scope exit.
//! Internally, though, child panics never cross a std join — they are
//! caught in the wrapper, stashed in a side slot, and re-surfaced by
//! *our* join, so an aborted model run (deadlock, failed schedule) can
//! drain every OS thread without tripping std's double-panic paths.

#[cfg(not(choir_model))]
pub use std::thread::{available_parallelism, scope, spawn, JoinHandle, Scope, ScopedJoinHandle};

#[cfg(choir_model)]
pub use std::thread::available_parallelism;

#[cfg(choir_model)]
mod model_impl {
    use crate::model;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex as StdMutex, PoisonError};

    type Payload = Box<dyn std::any::Any + Send + 'static>;
    type Slot = Arc<StdMutex<Option<Payload>>>;
    type Children = Arc<StdMutex<Vec<(usize, Slot)>>>;

    fn take_slot(slot: &Slot) -> Option<Payload> {
        slot.lock().unwrap_or_else(PoisonError::into_inner).take()
    }

    /// Runs `f`, stashing a panic payload in `slot` instead of letting it
    /// unwind into std's thread machinery. Returns `Some(value)` on
    /// success. Scheduler exit bookkeeping runs in both cases.
    fn run_guarded<T>(f: impl FnOnce() -> T, slot: &Slot, id: Option<usize>) -> Option<T> {
        if let Some(id) = id {
            model::child_begin(id);
        }
        let out = match catch_unwind(AssertUnwindSafe(f)) {
            Ok(v) => Some(v),
            Err(p) => {
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(p);
                None
            }
        };
        if let Some(id) = id {
            model::child_end(id);
        }
        out
    }

    /// A scope for spawning borrowed-data threads, mirroring
    /// [`std::thread::scope`] with model-scheduler registration.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        children: Children,
    }

    /// Handle to a scoped model thread (see [`Scope::spawn`]).
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
        id: Option<usize>,
        slot: Slot,
        children: Children,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; under a model run it executes only
        /// when the scheduler selects it.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let id = model::spawn_register();
            let slot: Slot = Arc::new(StdMutex::new(None));
            let child_slot = Arc::clone(&slot);
            let inner = self.inner.spawn(move || run_guarded(f, &child_slot, id));
            if let Some(id) = id {
                self.children
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push((id, Arc::clone(&slot)));
                // The new thread is runnable: let the scheduler decide
                // whether it or the parent proceeds.
                model::op_yield();
            }
            ScopedJoinHandle {
                inner,
                id,
                slot,
                children: Arc::clone(&self.children),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or its
        /// panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            if let Some(id) = self.id {
                model::join_wait(id);
                self.children
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .retain(|(cid, _)| *cid != id);
            }
            match self.inner.join() {
                Ok(Some(v)) => Ok(v),
                Ok(None) => Err(take_slot(&self.slot)
                    .unwrap_or_else(|| Box::new("choir-sync: missing panic payload"))),
                Err(p) => Err(p),
            }
        }
    }

    /// Creates a scope for spawning threads that borrow from the caller,
    /// mirroring [`std::thread::scope`]. At scope exit every unjoined
    /// child is awaited through the model scheduler; if one panicked, its
    /// payload is re-raised here (std's unjoined-panic semantics).
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope, 'a> FnOnce(&'a Scope<'scope, 'env>) -> T,
    {
        enum Outcome<T> {
            Done(T, Option<Payload>),
            ClosurePanic(Payload),
        }
        let out = std::thread::scope(|inner| {
            let s = Scope {
                inner,
                children: Arc::new(StdMutex::new(Vec::new())),
            };
            match catch_unwind(AssertUnwindSafe(|| f(&s))) {
                Ok(v) => {
                    // Await (and sweep panic payloads of) unjoined
                    // children before the std scope's implicit join.
                    let pending: Vec<(usize, Slot)> = std::mem::take(
                        &mut *s.children.lock().unwrap_or_else(PoisonError::into_inner),
                    );
                    let mut child_panic = None;
                    for (id, slot) in pending {
                        model::join_wait(id);
                        if child_panic.is_none() {
                            child_panic = take_slot(&slot).filter(|p| !model::is_abort_payload(p));
                        }
                    }
                    Outcome::Done(v, child_panic)
                }
                Err(p) => {
                    // The scope closure is unwinding: wake every blocked
                    // child so the std scope's implicit join can finish,
                    // then re-raise outside the std scope.
                    model::mark_abort();
                    Outcome::ClosurePanic(p)
                }
            }
        });
        match out {
            Outcome::Done(v, None) => v,
            Outcome::Done(_, Some(p)) => resume_unwind(p),
            Outcome::ClosurePanic(p) => resume_unwind(p),
        }
    }

    /// Handle to a detached model thread (see [`spawn`]).
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<Option<T>>,
        id: Option<usize>,
        slot: Slot,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish, returning its result or its
        /// panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            if let Some(id) = self.id {
                model::join_wait(id);
            }
            match self.inner.join() {
                Ok(Some(v)) => Ok(v),
                Ok(None) => Err(take_slot(&self.slot)
                    .unwrap_or_else(|| Box::new("choir-sync: missing panic payload"))),
                Err(p) => Err(p),
            }
        }
    }

    /// Spawns a detached thread, mirroring [`std::thread::spawn`]; under
    /// a model run it executes only when the scheduler selects it. Model
    /// tests must join every spawned thread before their closure returns
    /// (the run-end sweep waits for stragglers, but their work after the
    /// closure's final assertion is unchecked).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let id = model::spawn_register();
        let slot: Slot = Arc::new(StdMutex::new(None));
        let child_slot = Arc::clone(&slot);
        let inner = std::thread::spawn(move || run_guarded(f, &child_slot, id));
        if id.is_some() {
            model::op_yield();
        }
        JoinHandle { inner, id, slot }
    }
}

#[cfg(choir_model)]
pub use model_impl::{scope, spawn, JoinHandle, Scope, ScopedJoinHandle};
