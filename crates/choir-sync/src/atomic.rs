//! Atomic integers: std re-exports in normal builds, yield-point wrappers
//! under `cfg(choir_model)`.
//!
//! Only the API subset the workspace uses is wrapped (`new` / `load` /
//! `store` / `swap` / `fetch_add`); extending it is a one-line addition
//! to the macro invocation below. `Ordering` is always std's enum — the
//! model scheduler serialises execution, so every ordering is at least
//! as strong as requested.

pub use std::sync::atomic::Ordering;

#[cfg(not(choir_model))]
pub use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize};

#[cfg(choir_model)]
macro_rules! model_atomic {
    ($name:ident, $inner:path, $ty:ty) => {
        /// Model-checked atomic: every operation is a scheduler yield
        /// point, then delegates to the std atomic it wraps.
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $inner,
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(v: $ty) -> Self {
                $name {
                    inner: <$inner>::new(v),
                }
            }

            /// Loads the value (yield point under the model).
            #[inline]
            pub fn load(&self, order: Ordering) -> $ty {
                crate::model::op_yield();
                self.inner.load(order)
            }

            /// Stores a value (yield point under the model).
            #[inline]
            pub fn store(&self, v: $ty, order: Ordering) {
                crate::model::op_yield();
                self.inner.store(v, order);
            }

            /// Swaps the value, returning the previous one (yield point
            /// under the model).
            #[inline]
            pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                crate::model::op_yield();
                self.inner.swap(v, order)
            }

            /// Adds to the value, returning the previous one (yield point
            /// under the model).
            #[inline]
            pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                crate::model::op_yield();
                self.inner.fetch_add(v, order)
            }
        }
    };
}

#[cfg(choir_model)]
model_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8);
#[cfg(choir_model)]
model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
#[cfg(choir_model)]
model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
