//! Facade `OnceLock`: std pass-through normally, a yield point per
//! operation under the model.

/// A cell that can be written to at most once.
///
/// Normal builds delegate directly to [`std::sync::OnceLock`]. Under
/// `cfg(choir_model)` each operation is a scheduler yield point, and
/// `get_or_init` may evaluate the initialiser on more than one thread in
/// a racing schedule — the first completed `set` wins and every caller
/// observes that winning value. The workspace's initialisers are pure
/// (environment reads, empty-collection constructors), so running one
/// twice is unobservable; do not store an initialiser with side effects.
#[derive(Debug)]
pub struct OnceLock<T> {
    inner: std::sync::OnceLock<T>,
}

impl<T> OnceLock<T> {
    /// Creates an empty cell.
    pub const fn new() -> Self {
        OnceLock {
            inner: std::sync::OnceLock::new(),
        }
    }

    /// Returns the stored value, if any.
    #[inline]
    pub fn get(&self) -> Option<&T> {
        #[cfg(choir_model)]
        crate::model::op_yield();
        self.inner.get()
    }

    /// Stores `value` if the cell is empty; returns it back otherwise.
    #[inline]
    pub fn set(&self, value: T) -> Result<(), T> {
        #[cfg(choir_model)]
        crate::model::op_yield();
        self.inner.set(value)
    }

    /// Returns the stored value, initialising it with `f` if empty.
    #[cfg(not(choir_model))]
    #[inline]
    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
        self.inner.get_or_init(f)
    }

    /// Model variant of [`get_or_init`](Self::get_or_init): yields, then
    /// initialises without holding any real lock across the initialiser
    /// (std's `get_or_init` would block a second model thread in the OS,
    /// outside the scheduler's view). First completed `set` wins.
    #[cfg(choir_model)]
    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
        crate::model::op_yield();
        if self.inner.get().is_none() {
            let v = f();
            let _ = self.inner.set(v);
        }
        match self.inner.get() {
            Some(v) => v,
            None => unreachable!("OnceLock::set leaves the cell filled"),
        }
    }
}

impl<T> Default for OnceLock<T> {
    fn default() -> Self {
        OnceLock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_writer_wins() {
        let cell: OnceLock<u32> = OnceLock::new();
        assert_eq!(cell.get(), None);
        assert_eq!(cell.set(4), Ok(()));
        assert_eq!(cell.set(9), Err(9));
        assert_eq!(cell.get(), Some(&4));
        assert_eq!(*cell.get_or_init(|| 11), 4);
    }
}
