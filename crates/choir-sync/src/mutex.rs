//! The facade mutex: a `std::sync::Mutex` whose `lock` recovers from
//! poisoning, plus model-scheduler integration under `cfg(choir_model)`.

/// A mutual-exclusion lock.
///
/// Identical to [`std::sync::Mutex`] except that [`lock`](Mutex::lock)
/// never returns a poison error: if a previous holder panicked, the
/// guard is recovered (`PoisonError::into_inner`). Every mutex-guarded
/// structure in this workspace (trace rings, plan caches, chirp tables)
/// stays structurally valid across a panicking holder, so poison
/// propagation would only turn one failure into many.
///
/// Under `cfg(choir_model)` each acquire is a scheduler decision point
/// and contended acquires block *in the model* (the scheduler marks the
/// thread blocked and explores other threads) rather than in the OS.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
#[cfg(not(choir_model))]
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `t`.
    pub const fn new(t: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(t),
        }
    }

    /// Acquires the lock, blocking until it is available; recovers the
    /// guard if a previous holder panicked.
    #[cfg(not(choir_model))]
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires the lock through the model scheduler: yields, blocks in
    /// the model while another model thread holds it, and releases at
    /// guard drop.
    #[cfg(choir_model)]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let addr = self as *const Self as usize;
        let modelled = crate::model::lock_acquire(addr);
        // Exclusivity is enforced by the model scheduler for model
        // threads (`lock_acquire` returns only once this thread owns the
        // modelled lock), so the inner lock is uncontended there; for
        // non-model threads it is the real lock.
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        MutexGuard {
            inner: Some(guard),
            addr: if modelled { Some(addr) } else { None },
        }
    }
}

/// RAII guard returned by [`Mutex::lock`] under the model: wraps the std
/// guard and notifies the scheduler on drop.
#[cfg(choir_model)]
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// The modelled lock identity to release on drop; `None` when the
    /// acquiring thread was not part of a model run.
    addr: Option<usize>,
}

#[cfg(choir_model)]
impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            None => unreachable!("guard dereferenced after drop"),
        }
    }
}

#[cfg(choir_model)]
impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("guard dereferenced after drop"),
        }
    }
}

#[cfg(choir_model)]
impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first, then tell the scheduler: a woken
        // waiter must find the inner mutex free when it retries.
        self.inner.take();
        if let Some(addr) = self.addr {
            crate::model::lock_release(addr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(vec![1u8, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        static M: Mutex<u32> = Mutex::new(7);
        let _ = std::panic::catch_unwind(|| {
            let _g = M.lock();
            panic!("poison it");
        });
        assert_eq!(*M.lock(), 7, "lock must recover after a panicking holder");
    }
}
