//! # choir-sync — the workspace's one door to `std::sync`
//!
//! Every concurrency primitive the Choir pipeline uses — the pool's
//! chunk counter, the trace recorder's rings and sequence stamp, the
//! profile totals, the FFT-plan and chirp-table caches — goes through
//! this crate. The `sync_facade` lint rule (`cargo xtask lint`) bans
//! direct `std::sync::atomic` / `Mutex` / `OnceLock` / `std::thread`
//! use everywhere else, which buys two things:
//!
//! 1. **Normal builds are exactly std.** Each wrapper is a
//!    `#[repr(transparent)]`-style `#[inline]` pass-through (atomics are
//!    literal re-exports); there is no runtime cost and no semantic
//!    drift, with one deliberate exception: [`Mutex::lock`] recovers
//!    from poisoning instead of returning a `Result`, because every
//!    caller in the workspace wants the
//!    `lock().unwrap_or_else(PoisonError::into_inner)` behaviour — a
//!    half-written trace ring or plan cache is still structurally valid.
//! 2. **Model builds are checkable.** Under `RUSTFLAGS="--cfg
//!    choir_model"` (test-only; `cargo xtask ci model-check` drives it)
//!    every operation first yields to the deterministic scheduler in
//!    the `model` module (compiled only under that cfg), which explores
//!    bounded permutations of thread
//!    interleavings — DFS over the yield points with a seeded random
//!    fallback sampler, loom-style but hand-rolled so the offline
//!    container needs no external dependency. The real code runs under
//!    every explored schedule and its invariants are asserted in each.
//!
//! The model serialises execution (one thread runs between yield
//! points), so it explores all interleavings of the *operations* under
//! sequential consistency; it does not model weak-memory reordering.
//! That matches how the workspace uses atomics — counters and
//! first-writer-wins flags, never release/acquire publication chains —
//! and the `atomic_ordering` lint keeps every ordering choice annotated
//! so a future publication chain would be visible in review.
//!
//! ```
//! use choir_sync::atomic::{AtomicU64, Ordering};
//!
//! static HITS: AtomicU64 = AtomicU64::new(0);
//! HITS.fetch_add(1, Ordering::Relaxed); // ordering: doc example counter
//! assert!(HITS.load(Ordering::Relaxed) >= 1); // ordering: doc example counter
//! ```

#![deny(missing_docs)]

pub mod atomic;
mod mutex;
mod once;
pub mod thread;

#[cfg(choir_model)]
pub mod model;

pub use mutex::{Mutex, MutexGuard};
pub use once::OnceLock;
