//! # choir-mimo — the uplink MU-MIMO baseline and Choir+MIMO combining
//!
//! The Sec. 9.5 comparator: with `A` antennas, linear MU-MIMO (here MMSE,
//! with genie channel and timing knowledge — a generous baseline) can
//! separate at most `A` concurrent streams. Choir's gains are shown to be
//! complementary: running the Choir decoder per antenna and
//! selection-combining the results beats both.

#![deny(missing_docs)]

pub mod uplink;
pub mod zf;

pub use uplink::{choir_multi_antenna, mu_mimo_decode};
pub use zf::{separate, separation_matrix, MimoError};
