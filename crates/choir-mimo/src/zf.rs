//! Linear uplink MU-MIMO separation: zero-forcing and MMSE.
//!
//! The state-of-the-art baseline the paper compares against (Sec. 9.5)
//! separates up to `A` concurrent streams with `A` antennas by inverting
//! the channel matrix — its gain is structurally capped at the antenna
//! count, which is the limitation Choir escapes.

use choir_dsp::complex::C64;
use choir_dsp::linalg::CMat;

/// Errors from the separation stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MimoError {
    /// More streams than antennas: the linear system is underdetermined.
    TooManyStreams,
    /// Channel matrix numerically singular (colinear user channels).
    SingularChannel,
    /// Antenna streams have mismatched lengths.
    LengthMismatch,
}

impl std::fmt::Display for MimoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MimoError::TooManyStreams => write!(f, "more streams than antennas"),
            MimoError::SingularChannel => write!(f, "singular channel matrix"),
            MimoError::LengthMismatch => write!(f, "antenna stream length mismatch"),
        }
    }
}

impl std::error::Error for MimoError {}

/// Builds the separation matrix `W` (users × antennas) for channel `H`
/// (`channels[a][u]`): zero-forcing `W = (HᴴH)⁻¹Hᴴ`, or MMSE
/// `W = (HᴴH + σ²I)⁻¹Hᴴ` when `noise_power > 0`.
pub fn separation_matrix(channels: &[Vec<C64>], noise_power: f64) -> Result<CMat, MimoError> {
    let antennas = channels.len();
    if antennas == 0 {
        return Err(MimoError::SingularChannel);
    }
    let users = channels[0].len();
    if users > antennas {
        return Err(MimoError::TooManyStreams);
    }
    let mut h = CMat::zeros(antennas, users);
    for (a, row) in channels.iter().enumerate() {
        if row.len() != users {
            return Err(MimoError::LengthMismatch);
        }
        for (u, &v) in row.iter().enumerate() {
            h[(a, u)] = v;
        }
    }
    let hh = h.hermitian();
    let mut gram = hh.matmul(&h);
    if noise_power > 0.0 {
        for u in 0..users {
            gram[(u, u)] += C64::from_re(noise_power);
        }
    }
    let inv = gram.inverse().ok_or(MimoError::SingularChannel)?;
    Ok(inv.matmul(&hh))
}

/// Applies a separation matrix to per-antenna sample streams, producing
/// one stream per user.
pub fn separate(w: &CMat, antenna_streams: &[Vec<C64>]) -> Result<Vec<Vec<C64>>, MimoError> {
    let antennas = antenna_streams.len();
    if antennas != w.cols() {
        return Err(MimoError::LengthMismatch);
    }
    let len = antenna_streams[0].len();
    if antenna_streams.iter().any(|s| s.len() != len) {
        return Err(MimoError::LengthMismatch);
    }
    let users = w.rows();
    let mut out = vec![vec![C64::ZERO; len]; users];
    for t in 0..len {
        for (u, stream) in out.iter_mut().enumerate() {
            let mut acc = C64::ZERO;
            for a in 0..antennas {
                acc += w[(u, a)] * antenna_streams[a][t];
            }
            stream[t] = acc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use choir_dsp::complex::c64;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_c(rng: &mut StdRng) -> C64 {
        c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn zero_forcing_inverts_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        let antennas = 3;
        let users = 3;
        let channels: Vec<Vec<C64>> = (0..antennas)
            .map(|_| (0..users).map(|_| rand_c(&mut rng)).collect())
            .collect();
        // Random user streams.
        let len = 64;
        let x: Vec<Vec<C64>> = (0..users)
            .map(|_| (0..len).map(|_| rand_c(&mut rng)).collect())
            .collect();
        // Received = H x.
        let y: Vec<Vec<C64>> = (0..antennas)
            .map(|a| {
                (0..len)
                    .map(|t| (0..users).map(|u| channels[a][u] * x[u][t]).sum())
                    .collect()
            })
            .collect();
        let w = separation_matrix(&channels, 0.0).unwrap();
        let sep = separate(&w, &y).unwrap();
        for u in 0..users {
            for t in 0..len {
                assert!((sep[u][t] - x[u][t]).abs() < 1e-9, "u={u} t={t}");
            }
        }
    }

    #[test]
    fn too_many_streams_rejected() {
        let channels = vec![vec![C64::ONE; 4]; 3]; // 3 antennas, 4 users
        assert_eq!(
            separation_matrix(&channels, 0.0),
            Err(MimoError::TooManyStreams)
        );
    }

    #[test]
    fn colinear_channels_singular() {
        // Two users with identical array responses.
        let channels = vec![vec![C64::ONE, C64::ONE], vec![C64::ONE, C64::ONE]];
        assert_eq!(
            separation_matrix(&channels, 0.0),
            Err(MimoError::SingularChannel)
        );
    }

    #[test]
    fn mmse_handles_near_singular() {
        let eps = 1e-7;
        let channels = vec![
            vec![C64::ONE, C64::ONE + c64(eps, 0.0)],
            vec![C64::ONE, C64::ONE],
        ];
        // ZF blows up (giant inverse); MMSE stays bounded.
        let w = separation_matrix(&channels, 0.1).unwrap();
        assert!(w.fro_norm() < 100.0, "norm {}", w.fro_norm());
    }

    #[test]
    fn fewer_users_than_antennas_ok() {
        let mut rng = StdRng::seed_from_u64(2);
        let channels: Vec<Vec<C64>> = (0..3).map(|_| vec![rand_c(&mut rng)]).collect();
        let w = separation_matrix(&channels, 0.0).unwrap();
        assert_eq!(w.rows(), 1);
        assert_eq!(w.cols(), 3);
    }

    #[test]
    fn length_mismatch_detected() {
        let channels = vec![vec![C64::ONE], vec![C64::ONE]];
        let w = separation_matrix(&channels, 0.0).unwrap();
        let bad = vec![vec![C64::ZERO; 8], vec![C64::ZERO; 9]];
        assert_eq!(separate(&w, &bad), Err(MimoError::LengthMismatch));
    }
}
