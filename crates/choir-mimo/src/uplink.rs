//! The uplink MU-MIMO LoRa receiver (the Sec. 9.5 comparator) and
//! Choir+MIMO selection combining.

use choir_dsp::complex::C64;
use lora_phy::frame::DecodedFrame;
use lora_phy::modem::Modem;
use lora_phy::params::PhyParams;

use crate::zf::{separate, separation_matrix, MimoError};

/// Decodes up to `A` synchronized, same-SF streams from `A` antennas via
/// MMSE separation followed by the standard single-user LoRa receiver on
/// each separated stream.
///
/// The baseline is given every advantage the paper gives it: genie
/// knowledge of the channel matrix and packet timing (`slot_start`), so
/// its only limitation is the structural `streams ≤ antennas` cap.
pub fn mu_mimo_decode(
    antenna_streams: &[Vec<C64>],
    channels: &[Vec<C64>],
    params: &PhyParams,
    slot_start: usize,
    payload_len: usize,
    noise_power: f64,
) -> Result<Vec<Option<DecodedFrame>>, MimoError> {
    let w = separation_matrix(channels, noise_power)?;
    let separated = separate(&w, antenna_streams)?;
    let modem = Modem::new(*params);
    let nsyms = lora_phy::frame::frame_symbol_count(params, payload_len);
    Ok(separated
        .into_iter()
        .map(|stream| lora_phy::detect::decode_packet(&stream, &modem, slot_start, nsyms + 4).ok())
        .collect())
}

/// Choir + MU-MIMO combining (the paper's strongest configuration): run
/// the Choir decoder independently on every antenna and merge per-user
/// results, keeping any antenna's successful decode (selection combining
/// — "averaging results" across antennas).
pub fn choir_multi_antenna(
    antenna_streams: &[Vec<C64>],
    params: &PhyParams,
    slot_start: usize,
    payload_len: usize,
) -> Vec<choir_core::decoder::DecodedUser> {
    let decoder = choir_core::decoder::ChoirDecoder::new(*params);
    let mut merged: Vec<choir_core::decoder::DecodedUser> = Vec::new();
    for stream in antenna_streams {
        let decoded = decoder.decode_known_len(stream, slot_start, payload_len);
        for d in decoded {
            // Same transmitter ⇒ same payload; merge by decoded payload.
            let dup = merged
                .iter_mut()
                .find(|m| match (m.frame.as_ref(), d.frame.as_ref()) {
                    (Some(a), Some(b)) => a.payload == b.payload,
                    _ => false,
                });
            match dup {
                Some(existing) => {
                    // Keep the better copy (CRC pass wins, then magnitude).
                    if d.payload_ok() && !existing.payload_ok() {
                        *existing = d;
                    }
                }
                None => merged.push(d),
            }
        }
    }
    merged
}

// Tests assert on exactly-representable values (0.0, bin centres).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;
    use choir_channel::antenna::array_channels;
    use choir_channel::fading::Fading;
    use choir_channel::impairments::HardwareProfile;
    use choir_channel::mix::{mix_array, MixConfig, Transmission};
    use choir_channel::noise::db_to_lin;
    use lora_phy::chirp::PacketWaveform;
    use lora_phy::frame::packet_symbols;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn params() -> PhyParams {
        PhyParams::default()
    }

    /// (per-antenna captures, per-user clean waveforms, payloads, n).
    type Capture = (Vec<Vec<C64>>, Vec<Vec<C64>>, Vec<Vec<u8>>, usize);

    /// Builds an A-antenna capture of `k` synchronized ideal users (no
    /// hardware offsets — the regime MU-MIMO is designed for).
    fn mimo_capture(antennas: usize, snrs: &[f64], seed: u64) -> Capture {
        let p = params();
        let n = p.samples_per_symbol();
        let mut rng = StdRng::seed_from_u64(seed);
        let payloads: Vec<Vec<u8>> = (0..snrs.len())
            .map(|_| (0..6).map(|_| rng.gen()).collect())
            .collect();
        let txs: Vec<Transmission> = payloads
            .iter()
            .zip(snrs)
            .map(|(payload, &snr)| Transmission {
                waveform: PacketWaveform::new(n, packet_symbols(&p, payload)),
                channel: C64::ONE, // replaced per antenna by mix_array
                amplitude: db_to_lin(snr).sqrt(),
                profile: HardwareProfile::ideal(),
                start_sample: (2 * n) as f64,
            })
            .collect();
        let channels = array_channels(antennas, snrs.len(), Fading::Rayleigh, &mut rng);
        let total = 2 * n + txs[0].waveform.num_symbols() * n + 2 * n;
        let cfg = MixConfig {
            bw_hz: p.bw.hz(),
            noise_power: 1.0,
        };
        let streams = mix_array(&txs, &channels, total, &cfg, &mut rng);
        (streams, channels, payloads, 2 * n)
    }

    #[test]
    fn three_antennas_separate_three_users() {
        let (streams, channels, payloads, start) = mimo_capture(3, &[22.0, 20.0, 18.0], 1);
        let frames = mu_mimo_decode(&streams, &channels, &params(), start, 6, 1.0).unwrap();
        let mut ok = 0;
        for (f, truth) in frames.iter().zip(&payloads) {
            if let Some(frame) = f {
                if frame.crc_ok && &frame.payload == truth {
                    ok += 1;
                }
            }
        }
        assert!(ok >= 2, "only {ok}/3 separated");
    }

    #[test]
    fn four_users_exceed_three_antennas() {
        let (streams, channels, _, start) = mimo_capture(3, &[20.0; 4], 2);
        assert_eq!(
            mu_mimo_decode(&streams, &channels, &params(), start, 6, 1.0),
            Err(MimoError::TooManyStreams)
        );
    }

    #[test]
    fn choir_multi_antenna_merges_users() {
        // Two users with hardware offsets; two antennas with independent
        // fading. Choir decodes each antenna and merges.
        let p = params();
        let n = p.samples_per_symbol();
        let bin = p.bin_hz();
        let mut rng = StdRng::seed_from_u64(3);
        let payloads: Vec<Vec<u8>> = (0..2)
            .map(|_| (0..6).map(|_| rng.gen()).collect())
            .collect();
        let profs = [
            HardwareProfile {
                cfo_hz: 4.3 * bin,
                timing_offset_symbols: 0.12,
                phase: 0.5,
                cfo_jitter_hz: 0.0,
                timing_jitter_symbols: 0.0,
            },
            HardwareProfile {
                cfo_hz: -11.7 * bin,
                timing_offset_symbols: 0.31,
                phase: 1.5,
                cfo_jitter_hz: 0.0,
                timing_jitter_symbols: 0.0,
            },
        ];
        let txs: Vec<Transmission> = payloads
            .iter()
            .zip(profs)
            .map(|(payload, profile)| Transmission {
                waveform: PacketWaveform::new(n, packet_symbols(&p, payload)),
                channel: C64::ONE,
                amplitude: db_to_lin(18.0).sqrt(),
                profile,
                start_sample: (2 * n) as f64,
            })
            .collect();
        let channels = array_channels(2, 2, Fading::Rayleigh, &mut rng);
        let total = 2 * n + txs[0].waveform.num_symbols() * n + 2 * n;
        let cfg = MixConfig {
            bw_hz: p.bw.hz(),
            noise_power: 1.0,
        };
        let streams = mix_array(&txs, &channels, total, &cfg, &mut rng);
        let merged = choir_multi_antenna(&streams, &p, 2 * n, 6);
        let ok = merged
            .iter()
            .filter(|d| d.payload_ok() && payloads.contains(&d.frame.as_ref().unwrap().payload))
            .count();
        assert!(ok >= 2, "merged ok = {ok}");
        // No duplicate payloads in the merge.
        let mut seen = std::collections::HashSet::new();
        for d in &merged {
            if let Some(f) = &d.frame {
                assert!(seen.insert(f.payload.clone()), "duplicate after merge");
            }
        }
    }
}
