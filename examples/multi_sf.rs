//! Parallel decoding across spreading factors (Sec. 5.2, point 4): five
//! clients transmit simultaneously on SFs 7, 7, 8, 8 and 9 — the paper's
//! example configuration. Chirps of different SFs are near-orthogonal, so
//! the base station demultiplexes by SF and runs Choir per lane, decoding
//! collisions *within* each lane.
//!
//! ```text
//! cargo run --release --example multi_sf
//! ```

// Example binary: unwraps keep the demo readable; a panic is acceptable UX.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use choir::channel::mix::{mix, MixConfig, Transmission};
use choir::channel::noise::db_to_lin;
use choir::core::multisf::{cross_sf_leakage, decode_multi_sf, SfLane};
use choir::core::ChoirConfig;
use choir::dsp::complex::C64;
use choir::phy::chirp::PacketWaveform;
use choir::phy::frame::packet_symbols;
use choir::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // How orthogonal are mismatched chirps?
    println!("cross-SF leakage (peak power vs matched, lower = more orthogonal):");
    for (a, b) in [
        (SpreadingFactor::Sf7, SpreadingFactor::Sf8),
        (SpreadingFactor::Sf8, SpreadingFactor::Sf9),
        (SpreadingFactor::Sf7, SpreadingFactor::Sf9),
    ] {
        println!("  {a:?} lane vs {b:?} chirp: {:.4}", cross_sf_leakage(a, b));
    }

    // The paper's five-sensor configuration: SFs 7, 7, 8, 8, 9.
    let mut rng = StdRng::seed_from_u64(2017);
    let sfs = [
        SpreadingFactor::Sf7,
        SpreadingFactor::Sf7,
        SpreadingFactor::Sf8,
        SpreadingFactor::Sf8,
        SpreadingFactor::Sf9,
    ];
    let osc = OscillatorModel::default();
    let slot = 2 * 512;
    let mut payloads = Vec::new();
    let txs: Vec<Transmission> = sfs
        .iter()
        .map(|&sf| {
            let p = PhyParams {
                sf,
                ..PhyParams::default()
            };
            let payload: Vec<u8> = (0..6).map(|_| rng.gen()).collect();
            payloads.push((sf, payload.clone()));
            let ppm = osc.sample_ppm(&mut rng);
            Transmission {
                waveform: PacketWaveform::new(p.samples_per_symbol(), packet_symbols(&p, &payload)),
                channel: C64::ONE,
                amplitude: db_to_lin(rng.gen_range(16.0..22.0)).sqrt(),
                profile: osc.sample_profile(ppm, &mut rng),
                start_sample: slot as f64,
            }
        })
        .collect();
    let samples = mix(
        &txs,
        slot + 60 * 512,
        &MixConfig {
            bw_hz: 125e3,
            noise_power: 1.0,
        },
        &mut rng,
    );
    println!("\n5 clients on air simultaneously: SF7×2 (colliding), SF8×2 (colliding), SF9×1");

    let lanes: Vec<SfLane> = [
        SpreadingFactor::Sf7,
        SpreadingFactor::Sf8,
        SpreadingFactor::Sf9,
    ]
    .into_iter()
    .map(|sf| {
        let p = PhyParams {
            sf,
            ..PhyParams::default()
        };
        SfLane {
            params: p,
            num_data_symbols: choir::phy::frame::frame_symbol_count(&p, 6),
        }
    })
    .collect();
    let results = decode_multi_sf(&samples, slot, &lanes, ChoirConfig::default());

    let mut total = 0;
    for lane in &results {
        println!("\nlane {:?}:", lane.sf);
        for d in &lane.users {
            if d.payload_ok() {
                let payload = &d.frame.as_ref().unwrap().payload;
                let matched = payloads
                    .iter()
                    .any(|(sf, p)| *sf == lane.sf && p == payload);
                println!(
                    "  offset {:7.2} bins → {:02x?} {}",
                    d.user.offset_bins,
                    payload,
                    if matched { "✔" } else { "(?)" }
                );
                total += matched as usize;
            }
        }
    }
    println!(
        "\n{total}/5 packets recovered from one multi-SF pile-up \
         (cross-SF energy raises each lane's noise floor — Sec. 5.2's scalability point)"
    );
    assert!(total >= 3);
}
