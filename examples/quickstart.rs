//! Quickstart: two LoRa clients collide on the same spreading factor and
//! a single-antenna base station decodes both — the paper's headline
//! capability, end to end, in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

// Example binary: unwraps keep the demo readable; a panic is acceptable UX.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use choir::prelude::*;

fn main() {
    // Two clients somewhere in the urban testbed, both answering the same
    // beacon slot. Their cheap oscillators give them distinct frequency
    // and timing offsets — the imperfection Choir turns into a feature.
    let params = PhyParams::default(); // SF8, 125 kHz, CR 4/8
    let scenario = ScenarioBuilder::new(params)
        .snrs_db(&[20.0, 15.0])
        .payload_len(16)
        .oscillator(OscillatorModel::default())
        .seed(2017)
        .build();

    println!("transmitted:");
    for (i, u) in scenario.users.iter().enumerate() {
        println!(
            "  client {i}: snr {:5.1} dB, cfo {:8.1} Hz, slot delay {:5.2} symbols, payload {:02x?}",
            u.snr_db,
            u.profile.cfo_hz,
            u.profile.timing_offset_symbols,
            u.payload
        );
    }

    // The standard LoRaWAN gateway treats this collision as a loss
    // (footnote 1 of the paper). Choir disentangles it:
    let decoder = ChoirDecoder::new(params);
    let decoded = decoder.decode_known_len(&scenario.samples, scenario.slot_start, 16);

    println!("\ndecoded ({} users):", decoded.len());
    for d in &decoded {
        let frame = d.frame.as_ref().expect("frame");
        println!(
            "  offset {:7.2} bins (frac {:4.2}), timing {:6.2} chips, crc {}: {:02x?}",
            d.user.offset_bins, d.user.frac, d.user.timing_chips, frame.crc_ok, frame.payload
        );
    }

    let ok = decoded.iter().filter(|d| d.payload_ok()).count();
    assert_eq!(ok, 2, "both clients should decode");
    println!("\nboth payloads recovered from a single collision ✔");
}
