//! A smart-city deployment in one program: 30 temperature sensors across
//! a building, near ones streaming through Choir's collision decoding and
//! far ones teamed up by centre-distance grouping — the intro's motivating
//! scenario, with network metrics for Choir vs the LoRaWAN baselines.
//!
//! ```text
//! cargo run --release --example smart_city
//! ```

use choir::mac::{CollisionFatalPhy, TabulatedChoirPhy};
use choir::prelude::*;
use choir::sensors::recover::recover_group;
use choir::sensors::{make_groups, Building, EnvField};

fn main() {
    // --- the sensed world -------------------------------------------------
    let building = Building::default();
    let mut field = EnvField::new(building, 5);
    // A mild day: readings cluster tightly enough that co-located teams
    // share several MSB chunks (a cold snap widens the indoor/outdoor
    // spread and coarsens the shared view — try t_out = 4.0).
    field.t_out = 16.0;
    let sensors = building.place_sensors(30, 5);
    let readings: Vec<f64> = sensors
        .iter()
        .enumerate()
        .map(|(i, &p)| field.temperature_reading(p, i, 0))
        .collect();
    println!("=== sensed temperatures (30 sensors, 4 floors) ===");
    let min = readings.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = readings.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("  range {min:.1}..{max:.1} °C (façade cold, interior at setpoint)");

    // --- near sensors: Choir collision decoding vs baselines --------------
    let params = PhyParams::default();
    let cfg = SimConfig {
        params,
        payload_len: 8,
        num_nodes: 6,
        slots: 300,
        snr_range_db: (8.0, 22.0),
        beacon_overhead_s: 0.01,
        max_backoff_exp: 6,
        traffic: choir::mac::Traffic::Saturated,
        seed: 30,
    };
    // Decode probabilities calibrated from the IQ decoder (see
    // `choir-mac::calibrate_choir_phy`); these are the measured shape.
    let p_table = vec![1.0, 1.0, 0.97, 0.95, 0.9, 0.62];
    let mut aloha_phy = CollisionFatalPhy { params };
    let aloha = run_sim(MacScheme::Aloha, &cfg, &mut aloha_phy);
    let mut oracle_phy = CollisionFatalPhy { params };
    let oracle = run_sim(MacScheme::Oracle, &cfg, &mut oracle_phy);
    let mut choir_phy = TabulatedChoirPhy::new(p_table, 30);
    let choir = run_sim(MacScheme::Choir, &cfg, &mut choir_phy);
    println!("\n=== near cluster (6 in-range sensors, saturated uplink) ===");
    for (name, m) in [("ALOHA", &aloha), ("Oracle", &oracle), ("Choir", &choir)] {
        println!(
            "  {name:7}: {:7.0} bps, latency {:6.3} s, {:4.2} tx/pkt",
            m.throughput_bps, m.avg_latency_s, m.tx_per_packet
        );
    }
    println!(
        "  Choir gains: {:.1}× ALOHA, {:.1}× Oracle",
        choir.throughput_bps / aloha.throughput_bps,
        choir.throughput_bps / oracle.throughput_bps
    );

    // --- far sensors: correlated teams deliver a coarse view --------------
    println!("\n=== far sensors: centre-distance teams (coarse view) ===");
    let groups = make_groups(&building, &sensors, Strategy::ByCenterDistance, 6, 1);
    let q = Quantizer::temperature();
    for (gi, g) in groups.iter().enumerate() {
        let vals: Vec<f64> = g.iter().map(|&i| readings[i]).collect();
        let rec = recover_group(&vals, &q, usize::MAX);
        println!(
            "  team {gi}: {} sensors, {} MSB chunks common → coarse view {:.2} °C (err {:.1} %)",
            g.len(),
            rec.chunks_recovered,
            rec.reconstructed,
            rec.mean_normalized_error * 100.0
        );
    }
    println!("\nnear sensors stream at full rate; far sensors still contribute a coarse map ✔");
}
