//! The anatomy of collision decoding — walks through the paper's Secs. 4–6
//! on a dense five-user collision, printing what each pipeline stage sees:
//! the collided spectrum (Fig. 3), the residual refinement (Fig. 4 /
//! Algorithm 1), user discovery from the preamble, timing/CFO
//! disambiguation, and the per-user decode.
//!
//! ```text
//! cargo run --release --example collision_decoding
//! ```

use choir::core::estimator::{EstimatorConfig, OffsetEstimator};
use choir::core::sic::{phased_sic, SicConfig};
use choir::prelude::*;

fn main() {
    let params = PhyParams::default();
    let n = params.samples_per_symbol();
    let scenario = ScenarioBuilder::new(params)
        .snrs_db(&[22.0, 19.0, 16.0, 13.0, 10.0])
        .payload_len(10)
        .oscillator(OscillatorModel::default())
        .seed(42)
        .build();

    println!("=== ground truth (5 colliding clients) ===");
    for (i, u) in scenario.users.iter().enumerate() {
        let mu = u
            .profile
            .aggregate_shift_bins(params.bin_hz(), n)
            .rem_euclid(n as f64);
        println!(
            "  client {i}: snr {:5.1} dB  aggregate offset {:7.2} bins  delay {:6.2} chips",
            u.snr_db,
            mu,
            u.profile.timing_offset_symbols * n as f64
        );
    }

    // --- Stage 1: one preamble window, the Fig. 3 view -------------------
    let est = OffsetEstimator::new(n, EstimatorConfig::default());
    let win = &scenario.samples[scenario.slot_start + n..scenario.slot_start + 2 * n];
    let coarse = est.coarse(win);
    println!("\n=== coarse peaks in one dechirped preamble window (Fig. 3) ===");
    for p in &coarse {
        println!("  peak at {:7.2} bins, |X| = {:8.1}", p.pos, p.height);
    }

    // --- Stage 2: Algorithm 1 — residual-refined offsets + channels ------
    let sic = phased_sic(&est, win, &SicConfig::default());
    println!(
        "\n=== phased SIC / Algorithm 1 (residual {:.2e}) ===",
        sic.relative_residual
    );
    for c in &sic.components {
        println!(
            "  component at {:8.3} bins, |h| = {:6.2}, boundary split: {:?}",
            c.freq_bins,
            c.channel.abs(),
            c.step.map(|s| s.boundary)
        );
    }

    // --- Stage 3: the full decoder --------------------------------------
    let decoder = ChoirDecoder::new(params);
    let users = decoder.discover_users(&scenario.samples, scenario.slot_start);
    println!("\n=== discovered users (preamble tracking, Sec. 6) ===");
    for u in &users {
        println!(
            "  offset {:7.2} bins (frac {:4.2})  mag {:6.2}  timing {:6.2} chips  support {}",
            u.offset_bins, u.frac, u.mag, u.timing_chips, u.support
        );
    }

    let decoded = decoder.decode_known_len(&scenario.samples, scenario.slot_start, 10);
    println!("\n=== decoded packets ===");
    let mut ok = 0;
    for d in &decoded {
        let crc = d.payload_ok();
        ok += crc as usize;
        println!(
            "  offset {:7.2} bins  sync errs {}  crc {}  payload {:02x?}",
            d.user.offset_bins,
            d.sync_errors,
            crc,
            d.frame
                .as_ref()
                .map(|f| f.payload.clone())
                .unwrap_or_default()
        );
    }
    println!("\n{ok}/5 clients fully decoded from one collision");
    assert!(ok >= 4);
}
