//! Range extension with sensor teams (Sec. 7): a team of sensors, each
//! individually far beyond the base station's decoding range, delivers a
//! shared reading by answering the beacon together — accumulation reveals
//! the buried preamble and power-combining decodes the common symbols.
//!
//! ```text
//! cargo run --release --example range_extension
//! ```

use choir::prelude::*;

fn main() {
    let params = PhyParams::default();
    let topo = Topology::cmu_campus(7);

    // A sensor 1.4 km out — the single-node limit in this urban budget is
    // about 1 km (the paper measures the same).
    let distance = 1400.0;
    let member_snr = topo.link.snr_db(distance, params.bw.hz());
    let single_floor = params.sf.demod_floor_db();
    println!(
        "distance {distance} m → per-sensor SNR {member_snr:.1} dB (demod floor {single_floor:.1} dB)"
    );
    assert!(member_snr < single_floor, "pick a distance beyond range");

    // The shared packet: a spliced MSB chunk of the team's common reading.
    let reading = 21.8f64;
    let q = Quantizer::temperature();
    let code = choir::sensors::splice::quantize(reading, q.lo, q.hi, q.bits);
    let chunks = choir::sensors::splice::splice(code, q.bits, q.chunk_bits);
    let payload: Vec<u8> = chunks.clone();
    println!("reading {reading} °C → code {code:#05x} → MSB chunks {chunks:?}");

    for team in [1usize, 6, 14, 24] {
        let scenario = ScenarioBuilder::new(params)
            .snrs_db(&vec![member_snr; team])
            .shared_payload(payload.clone())
            .oscillator(OscillatorModel::default())
            .seed(99 + team as u64)
            .build();
        let dec = TeamDecoder::new(params, TeamConfig::default());
        match dec.decode(
            &scenario.samples,
            scenario.slot_start,
            scenario.slot_start + 1,
            payload.len(),
        ) {
            Some((det, Some(frame))) if frame.crc_ok && frame.payload == payload => {
                let rec_chunks: Vec<Option<u8>> = frame.payload.iter().map(|&c| Some(c)).collect();
                let rec_code =
                    choir::sensors::splice::reassemble(&rec_chunks, q.bits, q.chunk_bits);
                let rec = choir::sensors::splice::dequantize(rec_code, q.lo, q.hi, q.bits);
                println!(
                    "team of {team:2}: DECODED (detection metric {:5.1}, {} members visible) → {rec:.2} °C",
                    det.metric,
                    det.offsets.len()
                );
            }
            Some((det, _)) => println!(
                "team of {team:2}: detected (metric {:5.1}) but data not recoverable",
                det.metric
            ),
            None => println!("team of {team:2}: not even detectable"),
        }
    }
    println!("\nlarger teams reach further — the Fig. 9 mechanism");
}
