//! # choir — decoding collided LoRa transmissions at a single-antenna
//! base station
//!
//! A full Rust reproduction of *"Empowering Low-Power Wide Area Networks
//! in Urban Settings"* (Choir, SIGCOMM 2017): the collision-disentangling
//! decoder, the beyond-range team decoder, and every substrate they stand
//! on — a software LoRa PHY, an urban channel/hardware-impairment
//! simulator, MAC-layer network simulation, correlated sensor-data
//! modelling, and an uplink MU-MIMO baseline.
//!
//! This facade crate re-exports the workspace members; see each crate's
//! documentation for its module map, and `DESIGN.md` for the
//! paper-to-module inventory.
//!
//! ```no_run
//! use choir::prelude::*;
//!
//! // Synthesize a 3-user collision the way the urban testbed would…
//! let scenario = ScenarioBuilder::new(PhyParams::default())
//!     .snrs_db(&[20.0, 16.0, 12.0])
//!     .payload_len(12)
//!     .seed(7)
//!     .build();
//! // …and disentangle it at the (single-antenna) base station.
//! let decoder = ChoirDecoder::new(scenario.params);
//! for user in decoder.decode_known_len(&scenario.samples, scenario.slot_start, 12) {
//!     println!("offset {:6.2} bins → {:?}", user.user.offset_bins, user.frame);
//! }
//! ```

#![deny(missing_docs)]

pub use choir_channel as channel;
pub use choir_city as city;
pub use choir_core as core;
pub use choir_dsp as dsp;
pub use choir_mac as mac;
pub use choir_mimo as mimo;
pub use choir_sensors as sensors;
pub use choir_station as station;
pub use choir_testbed as testbed;
pub use lora_phy as phy;

/// The types most applications start from.
pub mod prelude {
    pub use choir_channel::scenario::{CollisionScenario, ScenarioBuilder};
    pub use choir_channel::{HardwareProfile, LinkBudget, OscillatorModel};
    pub use choir_core::{ChoirConfig, ChoirDecoder, TeamConfig, TeamDecoder};
    pub use choir_mac::{run_sim, MacScheme, SimConfig};
    pub use choir_sensors::{Building, EnvField, Quantizer, Strategy};
    pub use choir_station::{Station, StationConfig};
    pub use choir_testbed::{Scale, Topology};
    pub use lora_phy::{Modem, PhyParams, SpreadingFactor};
}
